"""Tests for the evaluation drivers and cross-module integration."""

import numpy as np
import pytest

from repro.eval.accuracy import bcq_perplexity_table, engine_perplexity_table
from repro.eval.efficiency import (
    accelerator_comparison_table,
    area_breakdown_by_format,
    area_efficiency_by_model,
    energy_breakdown_by_precision,
    tops_per_watt_by_model,
)
from repro.eval.headline import PAPER_HEADLINE_RATIOS, headline_efficiency_ratios
from repro.eval.tables import format_mapping, format_table


class TestTableFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text

    def test_format_mapping(self):
        text = format_mapping("Title", {"x": 1.5, "y": "z"})
        assert text.startswith("Title")
        assert "x: 1.500" in text


class TestEfficiencyDrivers:
    def test_area_breakdown_normalised_to_fpe(self):
        result = area_breakdown_by_format(weight_bits=4, formats=("fp16",))
        fp16 = result["fp16"]
        assert fp16["fpe"]["total"] == pytest.approx(1.0)
        assert fp16["figlut-f"]["arithmetic"] < fp16["fpe"]["arithmetic"]
        assert fp16["figlut-i"]["flip_flop"] < fp16["ifpu"]["flip_flop"]

    def test_area_efficiency_fig13(self):
        result = area_efficiency_by_model(weight_bits=4, models=("opt-125m", "opt-6.7b"))
        for model_result in result.values():
            assert model_result["fpe"] == pytest.approx(1.0)
            assert model_result["figna"] > 1.0
            assert model_result["figlut-i"] > 1.0

    def test_energy_breakdown_fig15_trends(self):
        result = energy_breakdown_by_precision(model_name="opt-1.3b",
                                               precisions=(2, 4, 8))
        # FPE is the normalisation baseline at every precision.
        for precision, engines in result.items():
            assert sum(engines["fpe"].values()) == pytest.approx(1.0)
        # FIGLUT-I total energy decreases as weight precision shrinks.
        total = {p: sum(result[p]["figlut-i"].values()) for p in result}
        assert total["q2"] < total["q4"] <= total["q8"] + 1e-9

    def test_tops_per_watt_fig16_trends(self):
        result = tops_per_watt_by_model(precisions=(2, 4), models=("opt-1.3b", "opt-6.7b"))
        for model_result in result.values():
            # FIGLUT-I always wins, and wins by more at 2 bits.
            assert model_result["q4"]["figlut-i"] == max(model_result["q4"].values())
            assert model_result["q2"]["figlut-i"] > model_result["q4"]["figlut-i"]

    def test_accelerator_table_ordering(self):
        rows = accelerator_comparison_table(model_name="opt-1.3b")
        by_name = {(r["hardware"], r["format"]): r for r in rows}
        figlut = by_name[("FIGLUT", "FP16-Q4")]
        figna = by_name[("FIGNA", "FP16-Q4")]
        ifpu = by_name[("iFPU", "FP16-Q4")]
        assert figlut["tops_per_watt"] > figna["tops_per_watt"] > ifpu["tops_per_watt"]
        # GPUs deliver far more TOPS but far less TOPS/W than the accelerators.
        a100 = by_name[("A100", "FP16-FP16")]
        assert a100["throughput_tops"] > figlut["throughput_tops"]
        assert a100["tops_per_watt"] < figlut["tops_per_watt"]


class TestHeadlineClaims:
    def test_ratios_grow_as_bits_shrink(self):
        ratios = headline_efficiency_ratios(model_name="opt-1.3b")
        assert ratios["q4_vs_figna_q4"] < ratios["q3_vs_figna_q3"] < ratios["q2_vs_figna_q2"]

    def test_ratios_same_order_of_magnitude_as_paper(self):
        ratios = headline_efficiency_ratios(model_name="opt-6.7b")
        for key, paper_value in PAPER_HEADLINE_RATIOS.items():
            assert ratios[key] == pytest.approx(paper_value, rel=0.45), key

    def test_figlut_always_at_least_as_efficient_as_figna(self):
        ratios = headline_efficiency_ratios(model_name="opt-350m")
        assert all(v >= 1.0 for v in ratios.values())


class TestAccuracyDrivers:
    def test_engine_perplexity_table_rows(self, trained_testbed):
        table = engine_perplexity_table(trained_testbed)
        assert set(table) == {"fp16 (unquantized)", "gpu", "figlut-f", "figlut-i"}
        gpu = table["gpu"]
        assert table["figlut-f"] == pytest.approx(gpu, rel=0.02)
        assert table["figlut-i"] == pytest.approx(gpu, rel=0.02)

    def test_bcq_perplexity_table_ordering(self, trained_testbed):
        table = bcq_perplexity_table(trained_testbed, bit_widths=(4, 3))
        assert table["bcq4"] >= table["fp16"] * 0.999
        assert table["bcq3"] >= table["bcq4"] * 0.999


class TestEndToEndIntegration:
    def test_quantize_run_and_cost_one_layer(self, rng):
        """Full pipeline: quantize → functional GEMM → hardware cost on one layer."""
        from repro.core import figlut_gemm, prepare_weights, reference_gemm
        from repro.hw import GEMMWorkloadShape, MemorySystemModel, engine_model
        from repro.hw.performance import evaluate_workload

        weight = rng.standard_normal((64, 96)) * 0.1
        x = rng.standard_normal((96, 4))
        packed = prepare_weights(weight, bits=3, method="bcq")
        y = figlut_gemm(packed, x, activation_format="fp32")
        np.testing.assert_allclose(y, reference_gemm(packed, x), rtol=1e-4, atol=1e-5)

        engine = engine_model("figlut-i", "fp16", 4)
        result = evaluate_workload(engine, [GEMMWorkloadShape(64, 96, 4)], 3,
                                   MemorySystemModel())
        assert result.total_energy_pj > 0
        assert result.tops_per_watt > 0

    def test_mpu_and_engine_paths_agree(self, rng):
        """The tile-level MPU simulation and the vectorised engine agree up to the
        engine's fp32 activation cast."""
        from repro.core import MPUConfig, MatrixProcessingUnit
        from repro.core.engines import FIGLUTFloatEngine
        from repro.quant.bcq import BCQConfig, quantize_bcq

        weight = rng.standard_normal((20, 28)) * 0.1
        x = rng.standard_normal((28, 3))
        packed = quantize_bcq(weight, BCQConfig(bits=2, iterations=2))
        mpu_out, _ = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=8)).gemm(
            packed, x, accumulate_dtype=np.float64)
        engine_out = FIGLUTFloatEngine(activation_format="fp32", accumulator="fp64").gemm(packed, x)
        np.testing.assert_allclose(mpu_out, engine_out, rtol=1e-5, atol=1e-7)
