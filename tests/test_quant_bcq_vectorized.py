"""Bit-exactness of the vectorized BCQ quantizer and engine hot paths.

The vectorized :func:`repro.quant.bcq.quantize_bcq` and the batched
pre-aligned GEMM core of the iFPU / FIGLUT-I engines must reproduce the seed
scalar implementations bit-for-bit — these tests pin that contract across
bit widths, group geometries (including ragged last groups), degenerate
shapes, and all-zero blocks.
"""

import numpy as np
import pytest

from repro.core.engines import FIGLUTIntEngine, IFPUEngine
from repro.numerics.floats import get_format
from repro.numerics.prealign import prealign
from repro.quant.bcq import (
    BCQConfig,
    BCQTensor,
    quantize_bcq,
    _reference_quantize_bcq,
)


def assert_bcq_equal(actual: BCQTensor, expected: BCQTensor) -> None:
    assert actual.shape == expected.shape
    assert actual.group_size == expected.group_size
    np.testing.assert_array_equal(actual.bitplanes, expected.bitplanes)
    np.testing.assert_array_equal(actual.scales, expected.scales)
    np.testing.assert_array_equal(actual.offsets, expected.offsets)
    np.testing.assert_array_equal(actual.per_row_bits, expected.per_row_bits)


class TestQuantizerEquivalence:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    @pytest.mark.parametrize("group_size", [None, 1, 128, "cols"])
    def test_bit_exact_vs_reference(self, rng, bits, group_size):
        rows, cols = 6, 160
        gs = cols if group_size == "cols" else group_size
        w = rng.standard_normal((rows, cols))
        cfg = BCQConfig(bits=bits, group_size=gs, iterations=4)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))

    @pytest.mark.parametrize("cols,group_size", [(100, 32), (37, 16), (5, 4)])
    def test_ragged_last_group(self, rng, cols, group_size):
        w = rng.standard_normal((4, cols))
        cfg = BCQConfig(bits=3, group_size=group_size, iterations=5)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))

    @pytest.mark.parametrize("shape", [(4, 0), (0, 7), (0, 0), (1, 1)])
    def test_degenerate_shapes(self, rng, shape):
        w = rng.standard_normal(shape)
        cfg = BCQConfig(bits=2, iterations=3)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))

    def test_all_zero_rows_and_blocks(self, rng):
        w = rng.standard_normal((6, 64))
        w[2] = 0.0          # an all-zero row
        w[4, :32] = 0.0     # an all-zero group
        cfg = BCQConfig(bits=4, group_size=32, iterations=5)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))

    @pytest.mark.parametrize("use_offset", [True, False])
    @pytest.mark.parametrize("iterations", [0, 5])
    def test_offset_and_iteration_variants(self, rng, use_offset, iterations):
        w = rng.standard_normal((5, 70))
        cfg = BCQConfig(bits=3, group_size=16, iterations=iterations,
                        use_offset=use_offset)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))

    def test_many_blocks_cross_chunk_boundaries(self, rng):
        # More (row, group) blocks than one kernel chunk, exercising the
        # workspace reuse across chunks.
        w = rng.standard_normal((48, 512))
        cfg = BCQConfig(bits=2, group_size=16, iterations=3)
        assert_bcq_equal(quantize_bcq(w, cfg), _reference_quantize_bcq(w, cfg))


class TestBCQTensorPostInit:
    def test_per_row_bits_derived_when_omitted(self):
        bitplanes = np.ones((3, 4, 8), dtype=np.int8)
        t = BCQTensor(bitplanes=bitplanes, scales=np.ones((3, 4, 1)),
                      offsets=np.zeros((4, 1)), group_size=8, shape=(4, 8))
        np.testing.assert_array_equal(t.per_row_bits, np.full(4, 3))

    def test_explicit_per_row_bits_preserved(self):
        bitplanes = np.ones((3, 4, 8), dtype=np.int8)
        custom = np.array([1, 2, 3, 4])
        t = BCQTensor(bitplanes=bitplanes, scales=np.ones((3, 4, 1)),
                      offsets=np.zeros((4, 1)), group_size=8, shape=(4, 8),
                      per_row_bits=custom)
        assert t.per_row_bits is custom


def _reference_prealigned_gemm(engine, bcq: BCQTensor, x: np.ndarray) -> np.ndarray:
    """The seed per-(batch, group, plane) scalar engine loop."""
    m, _ = bcq.shape
    batch = x.shape[1]
    y = np.zeros((m, batch), dtype=np.float64)
    fmt = get_format(engine.activation_format)
    for b in range(batch):
        for g, sl in enumerate(bcq.column_groups()):
            block = prealign(x[sl, b], fmt=fmt)
            mant = block.mantissas.astype(np.int64)
            for plane in range(bcq.bits):
                signs = bcq.bitplanes[plane][:, sl].astype(np.int64)
                acc = signs @ mant
                y[:, b] += bcq.scales[plane][:, g] * (acc * block.scale)
            y[:, b] += bcq.offsets[:, g] * float(np.sum(x[sl, b]))
    return y


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine_cls", [IFPUEngine, FIGLUTIntEngine])
    @pytest.mark.parametrize("group_size", [None, 8, 13])
    def test_batched_gemm_matches_scalar_loop(self, rng, engine_cls, group_size):
        w = rng.standard_normal((10, 26)) * 0.2
        x = rng.standard_normal((26, 7))
        bcq = quantize_bcq(w, BCQConfig(bits=3, group_size=group_size))
        engine = engine_cls(activation_format="fp16")
        x_cast = engine._quantize_activations(np.asarray(x, dtype=np.float64))
        expected = _reference_prealigned_gemm(engine, bcq, x_cast)
        np.testing.assert_array_equal(engine.gemm(bcq, x), expected)

    @pytest.mark.parametrize("engine_cls", [IFPUEngine, FIGLUTIntEngine])
    def test_vector_activation_squeeze(self, rng, engine_cls):
        w = rng.standard_normal((6, 16)) * 0.2
        x = rng.standard_normal(16)
        bcq = quantize_bcq(w, BCQConfig(bits=2, group_size=4))
        engine = engine_cls()
        x_cast = engine._quantize_activations(
            np.asarray(x, dtype=np.float64)[:, None])
        expected = _reference_prealigned_gemm(engine, bcq, x_cast)[:, 0]
        y = engine.gemm(bcq, x)
        assert y.shape == (6,)
        np.testing.assert_array_equal(y, expected)

    def test_ifpu_stats_match_seed_formulas(self, rng):
        w = rng.standard_normal((5, 12)) * 0.3
        x = rng.standard_normal((12, 3))
        bcq = quantize_bcq(w, BCQConfig(bits=2, group_size=5))  # ragged: 5,5,2
        engine = IFPUEngine()
        engine.gemm(bcq, x)
        m, n, batch, bits, n_groups = 5, 12, 3, 2, 3
        assert engine.stats.prealignments == n * batch
        assert engine.stats.int_additions == m * n * batch * bits
        assert engine.stats.fp_multiplications == m * batch * bits * n_groups
        assert engine.stats.fp_additions == m * batch * (bits + 1) * n_groups

    @pytest.mark.parametrize("engine_cls", [IFPUEngine, FIGLUTIntEngine])
    def test_empty_batch_and_empty_weights(self, rng, engine_cls):
        w = rng.standard_normal((4, 8))
        bcq = quantize_bcq(w, BCQConfig(bits=2, group_size=4))
        engine = engine_cls()
        y = engine.gemm(bcq, np.zeros((8, 0)))
        assert y.shape == (4, 0)
