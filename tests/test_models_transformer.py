"""Tests for the NumPy transformer LM: forward, backward, and training."""

import numpy as np
import pytest

from repro.models.training import AdamOptimizer, TrainingConfig, train_language_model
from repro.models.transformer import TransformerConfig, TransformerLM, cross_entropy, softmax


@pytest.fixture
def tiny_model():
    config = TransformerConfig(vocab_size=13, max_seq_len=8, d_model=8, n_heads=2,
                               n_layers=2, d_ff=16, seed=0)
    return TransformerLM(config)


@pytest.fixture
def tiny_batch(rng):
    return rng.integers(0, 13, size=(2, 6)), rng.integers(0, 13, size=(2, 6))


class TestBasics:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((4, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_inputs(self):
        probs = softmax(np.array([1e4, 0.0]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_of_uniform_logits(self):
        logits = np.zeros((1, 1, 10))
        loss, grad = cross_entropy(logits, np.array([[3]]))
        assert loss == pytest.approx(np.log(10))
        assert grad.shape == logits.shape

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=10, d_model=10, n_heads=3)

    def test_parameter_count_positive(self, tiny_model):
        assert tiny_model.num_parameters() > 0

    def test_weight_matrix_names(self, tiny_model):
        names = tiny_model.weight_matrix_names()
        assert len(names) == 2 * 6 + 1
        assert all(name in tiny_model.params for name in names)


class TestForward:
    def test_logit_shape(self, tiny_model, tiny_batch):
        tokens, _ = tiny_batch
        logits, _ = tiny_model.forward(tokens)
        assert logits.shape == (2, 6, 13)

    def test_causality(self, tiny_model, rng):
        # Changing a future token must not change earlier logits.
        tokens = rng.integers(0, 13, size=(1, 6))
        logits_a, _ = tiny_model.forward(tokens)
        perturbed = tokens.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % 13
        logits_b, _ = tiny_model.forward(perturbed)
        np.testing.assert_allclose(logits_a[0, :-1], logits_b[0, :-1], atol=1e-12)

    def test_too_long_sequence_raises(self, tiny_model, rng):
        with pytest.raises(ValueError):
            tiny_model.forward(rng.integers(0, 13, size=(1, 20)))

    def test_matmul_hook_is_used(self, tiny_model, tiny_batch):
        tokens, _ = tiny_batch
        called = []

        def hook(name, x, w):
            called.append(name)
            return x @ w.T

        logits_hooked, _ = tiny_model.forward(tokens, matmul=hook)
        logits_plain, _ = tiny_model.forward(tokens)
        np.testing.assert_allclose(logits_hooked, logits_plain)
        assert "lm_head.weight" in called
        assert any(name.endswith("attn.wq") for name in called)
        assert any(name.endswith("mlp.w2") for name in called)


class TestGradients:
    def test_gradients_match_numerical(self, tiny_model, tiny_batch):
        tokens, targets = tiny_batch
        _, grads = tiny_model.loss(tokens, targets)
        rng = np.random.default_rng(0)
        eps = 1e-5
        for name in ("layer0.attn.wq", "layer1.attn.wo", "layer0.mlp.w1", "layer1.mlp.b2",
                     "layer0.ln1.gamma", "ln_f.beta", "tok_emb", "pos_emb", "lm_head.weight"):
            param = tiny_model.params[name]
            idx = tuple(rng.integers(0, s) for s in param.shape)
            original = param[idx]
            param[idx] = original + eps
            loss_plus = tiny_model.evaluate_loss(tokens, targets)
            param[idx] = original - eps
            loss_minus = tiny_model.evaluate_loss(tokens, targets)
            param[idx] = original
            numerical = (loss_plus - loss_minus) / (2 * eps)
            assert grads[name][idx] == pytest.approx(numerical, abs=1e-6, rel=1e-4), name

    def test_gradients_cover_all_parameters(self, tiny_model, tiny_batch):
        tokens, targets = tiny_batch
        _, grads = tiny_model.loss(tokens, targets)
        assert set(grads) == set(tiny_model.params)


class TestTraining:
    def test_adam_moves_parameters(self, tiny_model, tiny_batch):
        tokens, targets = tiny_batch
        _, grads = tiny_model.loss(tokens, targets)
        before = tiny_model.params["lm_head.weight"].copy()
        AdamOptimizer(learning_rate=1e-2).update(tiny_model.params, grads)
        assert not np.allclose(before, tiny_model.params["lm_head.weight"])

    def test_adam_rejects_unknown_parameter(self, tiny_model):
        with pytest.raises(KeyError):
            AdamOptimizer().update(tiny_model.params, {"bogus": np.zeros(3)})

    def test_training_reduces_loss(self, rng):
        config = TransformerConfig(vocab_size=32, max_seq_len=16, d_model=16, n_heads=2,
                                   n_layers=1, d_ff=32, seed=1)
        model = TransformerLM(config)
        # A highly predictable token stream (counting pattern).
        stream = np.tile(np.arange(32), 40)
        history = train_language_model(model, stream,
                                       TrainingConfig(epochs=3, batch_size=8, seq_len=16,
                                                      learning_rate=5e-3))
        assert history["train_loss"][-1] < history["train_loss"][0] * 0.7

    def test_validation_loss_reported(self, rng):
        config = TransformerConfig(vocab_size=16, max_seq_len=8, d_model=8, n_heads=2,
                                   n_layers=1, d_ff=16, seed=1)
        model = TransformerLM(config)
        stream = np.tile(np.arange(16), 30)
        history = train_language_model(model, stream,
                                       TrainingConfig(epochs=1, batch_size=4, seq_len=8),
                                       valid_tokens=stream[:64])
        assert len(history["valid_loss"]) == 1
