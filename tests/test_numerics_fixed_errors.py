"""Tests for fixed-point helpers and error metrics."""

import numpy as np
import pytest

from repro.numerics.errors import max_abs_error, mean_abs_error, relative_error, sqnr_db
from repro.numerics.fixed import (
    clamp_to_bits,
    from_twos_complement,
    int_bits_required,
    saturating_add,
    to_twos_complement,
)


class TestIntBitsRequired:
    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 2), (-1, 1), (7, 4), (-8, 4), (8, 5)])
    def test_signed(self, value, expected):
        assert int_bits_required(value, signed=True) == expected

    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 1), (255, 8), (256, 9)])
    def test_unsigned(self, value, expected):
        assert int_bits_required(value, signed=False) == expected

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            int_bits_required(-1, signed=False)


class TestClampAndTwosComplement:
    def test_clamp_signed(self):
        assert clamp_to_bits(np.array([200, -200, 5]), 8).tolist() == [127, -128, 5]

    def test_clamp_unsigned(self):
        assert clamp_to_bits(np.array([300, -5]), 8, signed=False).tolist() == [255, 0]

    def test_twos_complement_roundtrip(self, rng):
        values = rng.integers(-128, 128, size=50)
        words = to_twos_complement(values, 8)
        assert np.all(words >= 0) and np.all(words < 256)
        np.testing.assert_array_equal(from_twos_complement(words, 8), values)

    def test_twos_complement_overflow_raises(self):
        with pytest.raises(ValueError):
            to_twos_complement(np.array([128]), 8)

    def test_from_twos_complement_invalid_word(self):
        with pytest.raises(ValueError):
            from_twos_complement(np.array([256]), 8)

    def test_saturating_add(self):
        assert saturating_add(100, 100, 8) == 127
        assert saturating_add(-100, -100, 8) == -128
        assert saturating_add(5, 6, 8) == 11


class TestErrorMetrics:
    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5

    def test_mean_abs_error(self):
        assert mean_abs_error(np.array([1.0, 2.0]), np.array([1.5, 2.5])) == 0.5

    def test_relative_error_zero_for_identical(self, rng):
        x = rng.standard_normal(20)
        assert relative_error(x, x) == 0.0

    def test_sqnr_increases_with_smaller_noise(self, rng):
        signal = rng.standard_normal(1000)
        noisy_small = signal + rng.standard_normal(1000) * 1e-4
        noisy_big = signal + rng.standard_normal(1000) * 1e-2
        assert sqnr_db(signal, noisy_small) > sqnr_db(signal, noisy_big)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))
