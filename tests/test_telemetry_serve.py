"""End-to-end observability: telemetry must see everything and change nothing.

Two acceptance pins live here:

* **Bit-identity** — served tokens *and* the aggregate
  :class:`~repro.core.mpu.MPURunStats` of identically seeded servers are
  bit-identical with telemetry enabled vs disabled (the instrumentation
  only reads clocks; it never touches a value or a counter).
* **Trace reconstruction** — a concurrent ``submit_generate`` run exports
  a Chrome trace from which each request's
  queue → admission (prefill) → decode iterations → departure timeline
  can be rebuilt structurally: request-id correlation, monotonic
  timestamps, and lifecycle containment.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, CacheConfig, DecodeScheduler, InferenceServer
from repro.telemetry import get_telemetry, telemetry_session

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)
VOCAB = 41
NEW_TOKENS = 6
NUM_REQUESTS = 5


@pytest.fixture(scope="module")
def served_qlm():
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=32,
                                            d_model=16, n_heads=2, n_layers=1,
                                            d_ff=32, seed=7))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=8)
    return QuantizedLM.build(model, recipe, engine="figlut-f")


def _build_server(qlm):
    return InferenceServer(qlm, num_shards=2,
                           policy=BatchPolicy(max_batch=4, max_wait_us=500),
                           mpu_config=MPU_CFG, backend="thread",
                           executor="compiled", decode_max_active=4,
                           cache_config=CacheConfig(page_size=4))


def _prompts():
    rng = np.random.default_rng(11)
    return [rng.integers(0, VOCAB, size=int(rng.integers(5, 12)))
            for _ in range(NUM_REQUESTS)]


def _generate_all(server, prompts):
    async def main():
        results = await asyncio.gather(*[
            server.submit_generate(p, NEW_TOKENS) for p in prompts])
        await server.aclose()
        return results

    return asyncio.run(main())


class TestBitIdentity:
    def test_tokens_and_stats_identical_with_telemetry_on(self, served_qlm):
        prompts = _prompts()
        baseline = _generate_all(_build_server(served_qlm), prompts)

        with telemetry_session(profiling=True) as tel:
            server = _build_server(served_qlm)
            traced = _generate_all(server, prompts)
            run_stats = server.decode_metrics.mpu_stats

        off_server = _build_server(served_qlm)
        off = _generate_all(off_server, prompts)
        off_stats = off_server.decode_metrics.mpu_stats

        for a, b, c in zip(baseline, traced, off, strict=True):
            np.testing.assert_array_equal(a.tokens, b.tokens)
            np.testing.assert_array_equal(a.tokens, c.tokens)
        # The modelled counters are part of the contract, not just outputs.
        assert run_stats == off_stats
        assert len(tel.trace) > 0

    def test_disabled_telemetry_records_nothing(self, served_qlm):
        tel = get_telemetry()
        assert not tel.enabled
        before = len(tel.trace)
        _generate_all(_build_server(served_qlm), _prompts())
        assert len(tel.trace) == before == 0


class TestTraceReconstruction:
    @pytest.fixture(scope="class")
    def trace_doc(self, served_qlm, tmp_path_factory):
        with telemetry_session(profiling=True) as tel:
            server = _build_server(served_qlm)
            results = _generate_all(server, _prompts())
            prom = tel.render_prometheus()
            profile = tel.profile.snapshot()
            path = tel.export_chrome(
                tmp_path_factory.mktemp("trace") / "trace.json")
        doc = json.loads(path.read_text())
        return doc, results, prom, profile

    def test_every_request_timeline_reconstructs(self, trace_doc):
        doc, results, _, _ = trace_doc
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]

        def request_spans(name, rid):
            return [s for s in spans if s["name"] == name
                    and (s["args"].get("request_id") == rid
                         or rid in s["args"].get("request_ids", []))]

        for result in results:
            rid = result.request_id
            (queue,) = request_spans("request.queue", rid)
            admissions = request_spans("scheduler.admission", rid)
            prefills = request_spans("scheduler.prefill", rid)
            decodes = request_spans("decode.iteration", rid)
            (lifecycle,) = request_spans("request.lifecycle", rid)
            departures = [i for i in instants if i["name"] == "request.departure"
                          and i["args"]["request_id"] == rid]
            assert len(admissions) == 1 and len(prefills) == 1
            assert len(departures) == 1
            # One decode iteration per generated token (prefill may emit
            # the first token, so allow NEW_TOKENS or NEW_TOKENS - 1).
            assert len(decodes) in (result.tokens.size, result.tokens.size - 1)

            # Ordering: queue ends when admission begins working on the
            # request; prefill lies inside the admission wave; decode
            # iterations follow prefill; departure is last.
            adm = admissions[0]
            pf = prefills[0]
            assert queue["ts"] <= adm["ts"] + adm["dur"]
            assert adm["ts"] <= pf["ts"]
            assert pf["ts"] + pf["dur"] <= adm["ts"] + adm["dur"] + 1e-3
            first_decode = min(d["ts"] for d in decodes)
            last_decode = max(d["ts"] + d["dur"] for d in decodes)
            assert pf["ts"] + pf["dur"] <= first_decode + 1e-3
            assert last_decode <= departures[0]["ts"] + 1e-3

            # Lifecycle spans submit → departure and contains the rest.
            assert lifecycle["ts"] <= queue["ts"]
            assert last_decode <= lifecycle["ts"] + lifecycle["dur"] + 1e-3
            assert lifecycle["args"]["finish_reason"] == "length"
            assert lifecycle["args"]["generated_tokens"] == NEW_TOKENS

    def test_timestamps_are_rebased_and_monotonic(self, trace_doc):
        doc, _, _, _ = trace_doc
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(s["ts"] for s in spans) == 0
        assert all(s["dur"] >= 0 for s in spans)

    def test_executor_spans_present(self, trace_doc):
        doc, _, _, _ = trace_doc
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"pool.gemm", "pool.shard", "pool.merge"} <= names
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"request", "scheduler", "decode", "pool"} <= cats

    def test_prometheus_exposition_covers_serving_metrics(self, trace_doc):
        _, _, prom, _ = trace_doc
        for needle in ("batcher_queue_depth",
                       "decode_waiting_requests",
                       "decode_active_requests",
                       "page_pool_occupancy",
                       "decode_prefix_hit_rate",
                       "page_pool_prefix_hit_rate",
                       "decode_token_latency_seconds_count",
                       'decode_token_latency_seconds{quantile="0.5"}',
                       "pool_shard_utilization",
                       "server_request_latency_seconds"):
            assert needle in prom, f"missing {needle} in exposition"
        # Parses line-by-line: every non-comment line is `series value`.
        for line in prom.splitlines():
            if not line or line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_profiling_rollups_present(self, trace_doc):
        _, _, _, profile = trace_doc
        assert {"program.fused.luts", "scheduler.decode",
                "scheduler.admit"} <= set(profile)
        for entry in profile.values():
            assert entry["count"] >= 1
            assert entry["seconds"] >= 0.0


class TestSchedulerBackpressureInstant:
    def test_backpressure_emits_instant(self, served_qlm):
        with telemetry_session() as tel:
            sched = DecodeScheduler(served_qlm, mpu_config=MPU_CFG,
                                    cache_config=CacheConfig(page_size=4,
                                                             num_pages=16),
                                    max_active=8)
            rng = np.random.default_rng(3)
            for _ in range(6):
                sched.submit(rng.integers(0, VOCAB, size=10), 4)
            sched.run_until_idle()
            names = {e.name for e in tel.trace.events()}
        assert "scheduler.backpressure" in names
