"""Shard-equivalence tests: plan sharding, subset execution, exact merging.

The serving subsystem's correctness contract: for 1, 2 and 7 shards, on
uniform, ragged and mixed-precision plans, row-axis sharded execution is
**bit-exact** against the unsharded ``MatrixProcessingUnit.gemm`` — outputs
via the scatter merge, ``MPURunStats`` via counter-wise summation — and
segment-axis sharding keeps the summed stats exactly equal (outputs agree
to accumulator rounding, as documented: float partial-sum reduction cannot
replay the unsharded addition order).
"""

import numpy as np
import pytest

from repro.core.dataflow import TilingConfig, plan_bcq_tile_execution
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
from repro.serve import merge_shard_outputs, shard_plan

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)  # tile 4×8


def _case(rng, kind):
    """(tensor, activations) for a uniform, ragged, or mixed plan."""
    if kind == "uniform":
        m, n, bits = 32, 32, 3
        w = rng.standard_normal((m, n)) * 0.1
        tensor = quantize_bcq(w, BCQConfig(bits=bits, group_size=8, iterations=1))
    elif kind == "ragged":
        m, n, bits = 29, 27, 3  # ragged row bands, column bands, µ-groups
        w = rng.standard_normal((m, n)) * 0.1
        tensor = quantize_bcq(w, BCQConfig(bits=bits, group_size=7, iterations=1))
    else:  # mixed
        m, n = 30, 26
        w = rng.standard_normal((m, n)) * 0.1
        row_bits = rng.choice([1, 2, 3, 4], size=m)
        tensor = quantize_bcq_mixed(w, row_bits,
                                    BCQConfig(group_size=6, iterations=1))
    x = rng.standard_normal((tensor.shape[1], 5))
    return tensor, x


class TestShardPlan:
    def test_row_shards_partition_bands(self, rng):
        tensor, _ = _case(rng, "mixed")
        plan = MatrixProcessingUnit(MPU_CFG).plan(tensor)
        shards = shard_plan(plan, 3, axis="rows")
        assert 1 <= len(shards) <= 3
        seen = sorted(i for s in shards for i in s.band_indices)
        assert seen == list(range(len(plan.row_bands)))
        rows = np.sort(np.concatenate([s.row_indices for s in shards]))
        np.testing.assert_array_equal(rows, np.arange(plan.m))
        # Every shard carries the full segment list and all scale groups.
        for s in shards:
            assert s.segments == plan.segments
            assert s.owned_scale_groups == tuple(range(plan.num_scale_groups))

    def test_segment_shards_partition_segments_and_groups(self, rng):
        tensor, _ = _case(rng, "ragged")
        plan = MatrixProcessingUnit(MPU_CFG).plan(tensor)
        shards = shard_plan(plan, 3, axis="segments")
        seg_idx = sorted(i for s in shards for i in s.segment_indices)
        assert seg_idx == list(range(len(plan.segments)))
        owned = sorted(g for s in shards for g in s.owned_scale_groups)
        assert owned == list(range(plan.num_scale_groups))
        # Segment shards never split a geometric column band (pass additivity).
        assert sum(s.num_column_bands for s in shards) == plan.num_bands

    def test_plane_pass_cost_is_balanced(self):
        # 8 uniform row bands across 3 shards: LPT keeps loads within one
        # band's cost of each other.
        plan = plan_bcq_tile_execution(8 * 4, 16, bits=3,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4, group_size=8)
        shards = shard_plan(plan, 3, axis="rows")
        costs = [s.cost for s in shards]
        band_cost = plan.row_bands[0].planes * plan.lut_group_total
        assert max(costs) - min(costs) <= band_cost
        assert sum(s.plane_passes for s in shards) == plan.plane_passes

    def test_more_shards_than_units_drops_empties(self):
        plan = plan_bcq_tile_execution(8, 8, bits=2,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4)
        shards = shard_plan(plan, 7, axis="rows")
        assert len(shards) == 2  # one per row band
        assert all(s.row_bands for s in shards)

    def test_rejects_bad_arguments(self, rng):
        tensor, _ = _case(rng, "uniform")
        plan = MatrixProcessingUnit(MPU_CFG).plan(tensor)
        with pytest.raises(ValueError):
            shard_plan(plan, 0)
        with pytest.raises(ValueError):
            shard_plan(plan, 2, axis="diagonal")
        with pytest.raises(ValueError):
            plan.shard_rows([99])


class TestShardedExecutionEquivalence:
    @pytest.mark.parametrize("kind", ["uniform", "ragged", "mixed"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_row_axis_bit_exact(self, rng, kind, num_shards):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        y_ref, stats_ref = mpu.gemm(tensor, x)
        shards = shard_plan(mpu.plan(tensor), num_shards, axis="rows")
        results = [mpu.gemm(tensor, x, shard=s) for s in shards]
        y, stats = merge_shard_outputs(shards, results)
        np.testing.assert_array_equal(y, y_ref)
        assert stats == stats_ref

    @pytest.mark.parametrize("kind", ["uniform", "ragged", "mixed"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_segment_axis_stats_exact_outputs_close(self, rng, kind, num_shards):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        y_ref, stats_ref = mpu.gemm(tensor, x)
        shards = shard_plan(mpu.plan(tensor), num_shards, axis="segments")
        results = [mpu.gemm(tensor, x, shard=s) for s in shards]
        y, stats = merge_shard_outputs(shards, results)
        assert stats == stats_ref  # exactly additive counters
        np.testing.assert_allclose(y, y_ref, rtol=1e-12, atol=1e-12)

    def test_per_shard_stats_match_shard_stats(self, rng):
        tensor, x = _case(rng, "mixed")
        mpu = MatrixProcessingUnit(MPU_CFG)
        for axis in ("rows", "segments"):
            for shard in shard_plan(mpu.plan(tensor), 3, axis=axis):
                _, executed = mpu.gemm(tensor, x, shard=shard)
                assert executed == mpu.shard_stats(shard, batch=x.shape[1])

    def test_row_shard_output_rows_match_reference_rows(self, rng):
        tensor, x = _case(rng, "ragged")
        mpu = MatrixProcessingUnit(MPU_CFG)
        y_ref, _ = mpu.gemm(tensor, x)
        [_, shard] = shard_plan(mpu.plan(tensor), 2, axis="rows")[:2]
        y_shard, _ = mpu.gemm(tensor, x, shard=shard)
        np.testing.assert_array_equal(y_shard, y_ref[shard.row_indices])

    def test_vector_activations_squeeze(self, rng):
        tensor, x = _case(rng, "uniform")
        mpu = MatrixProcessingUnit(MPU_CFG)
        y_ref, _ = mpu.gemm(tensor, x[:, 0])
        shards = shard_plan(mpu.plan(tensor), 2, axis="rows")
        results = [mpu.gemm(tensor, x[:, 0], shard=s) for s in shards]
        y, _ = merge_shard_outputs(shards, results)
        assert y.shape == y_ref.shape == (tensor.shape[0],)
        np.testing.assert_array_equal(y, y_ref)

    def test_shard_of_wrong_tensor_raises(self, rng):
        tensor, x = _case(rng, "uniform")
        other, _ = _case(rng, "ragged")
        mpu = MatrixProcessingUnit(MPU_CFG)
        [shard] = shard_plan(mpu.plan(other), 1, axis="rows")
        with pytest.raises(ValueError):
            mpu.gemm(tensor, x, shard=shard)

    def test_merge_rejects_incomplete_partition(self, rng):
        tensor, x = _case(rng, "uniform")
        mpu = MatrixProcessingUnit(MPU_CFG)
        shards = shard_plan(mpu.plan(tensor), 2, axis="rows")
        results = [mpu.gemm(tensor, x, shard=s) for s in shards]
        with pytest.raises(ValueError):
            merge_shard_outputs(shards[:1], results[:1])


class TestPreparedWeights:
    @pytest.mark.parametrize("kind", ["uniform", "mixed"])
    def test_prepared_gemm_bit_identical(self, rng, kind):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        y_ref, stats_ref = mpu.gemm(tensor, x)
        prepared = mpu.prepare(tensor)
        y, stats = mpu.gemm(prepared, x)
        np.testing.assert_array_equal(y, y_ref)
        assert stats == stats_ref

    def test_prepared_segment_shard(self, rng):
        tensor, x = _case(rng, "mixed")
        mpu = MatrixProcessingUnit(MPU_CFG)
        prepared = mpu.prepare(tensor)
        shards = shard_plan(prepared.plan, 2, axis="segments")
        raw = [mpu.gemm(tensor, x, shard=s) for s in shards]
        prep = [mpu.gemm(prepared, x, shard=s) for s in shards]
        for (y_r, s_r), (y_p, s_p) in zip(raw, prep, strict=True):
            np.testing.assert_array_equal(y_p, y_r)
            assert s_p == s_r

    def test_prepared_rejects_row_shards(self, rng):
        tensor, x = _case(rng, "uniform")
        mpu = MatrixProcessingUnit(MPU_CFG)
        prepared = mpu.prepare(tensor)
        [shard] = shard_plan(prepared.plan, 1, axis="rows")
        with pytest.raises(ValueError):
            mpu.gemm(prepared, x, shard=shard)


class TestTakeRows:
    def test_slice_matches_full_tensor_rows(self, rng):
        tensor, x = _case(rng, "mixed")
        rows = np.array([0, 3, 7, 11, 29])
        sliced = tensor.take_rows(rows)
        assert sliced.shape == (5, tensor.shape[1])
        np.testing.assert_array_equal(sliced.dequantize(),
                                      tensor.dequantize()[rows])
        np.testing.assert_array_equal(np.asarray(sliced.per_row_bits),
                                      np.asarray(tensor.per_row_bits)[rows])

    def test_slice_accepts_slice_and_mask(self, rng):
        tensor, _ = _case(rng, "uniform")
        a = tensor.take_rows(slice(4, 12))
        mask = np.zeros(tensor.shape[0], dtype=bool)
        mask[4:12] = True
        b = tensor.take_rows(mask)
        np.testing.assert_array_equal(a.dequantize(), b.dequantize())
