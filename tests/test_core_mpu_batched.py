"""Equivalence tests pinning the batched MPU executor to the scalar reference.

The batched :meth:`MatrixProcessingUnit.gemm` and the retained scalar
:meth:`MatrixProcessingUnit.gemm_reference` walk the same
scale-group-aligned :class:`TileExecutionPlan`; these tests assert they are
bit-for-bit identical — outputs *and* every :class:`MPURunStats` counter —
across multi-scale-group tiles, ragged/padded shapes, and fp16/fp32/fp64
accumulators, and that ``accumulate_dtype`` is genuinely honoured when a
tile band spans several scale groups (the seed's silent float64 fallback).
"""

import numpy as np
import pytest

from repro.core.dataflow import TilingConfig, plan_bcq_tile_execution
from repro.core.lut import build_lut_tables, build_lut_values
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.quant.bcq import BCQConfig, quantize_bcq


def _make_case(rng, m, n, bits, group_size, iterations=2):
    w = rng.standard_normal((m, n)) * 0.1
    return quantize_bcq(w, BCQConfig(bits=bits, group_size=group_size,
                                     iterations=iterations))


class TestPlanner:
    def test_segments_split_at_scale_group_boundaries(self):
        # tile_n = 8, scale groups of 6 → bands [0:8) and [8:16) must be cut
        # at columns 6 and 12.
        plan = plan_bcq_tile_execution(4, 16, bits=2,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4, group_size=6)
        spans = [(s.col_slice.start, s.col_slice.stop, s.scale_group)
                 for s in plan.segments]
        assert spans == [(0, 6, 0), (6, 8, 1), (8, 12, 1), (12, 16, 2)]
        # A segment never spans two scale groups by construction.
        for seg in plan.segments:
            assert (seg.col_slice.start // 6) == ((seg.col_slice.stop - 1) // 6)

    def test_single_group_plan_matches_geometric_tiling(self):
        plan = plan_bcq_tile_execution(8, 32, bits=3,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4, group_size=None)
        assert len(plan.segments) == 4  # one segment per band, no splitting
        assert plan.num_tiles == 2 * 4
        assert plan.num_steps == plan.num_tiles * 3

    def test_lut_groups_round_up_ragged_segments(self):
        plan = plan_bcq_tile_execution(4, 10, bits=1,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4, group_size=None)
        # Bands [0:8) and [8:10): the 2-wide tail still occupies one µ-group.
        assert [seg.lut_groups for seg in plan.segments] == [2, 1]

    def test_steps_iterate_planes_innermost(self):
        plan = plan_bcq_tile_execution(8, 8, bits=3,
                                       config=TilingConfig(tile_m=4, tile_n=4),
                                       mu=4, group_size=None)
        steps = list(plan.steps())
        assert [s.bit_plane for s in steps[:3]] == [0, 1, 2]
        assert all(s.tile_index == steps[0].tile_index for s in steps[:3])
        assert len(steps) == plan.num_steps

    def test_rejects_bad_parameters(self):
        cfg = TilingConfig(tile_m=4, tile_n=4)
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=0, config=cfg, mu=4)
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=2, config=cfg, mu=0)
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=2, config=cfg, mu=4, group_size=0)


class TestBatchedLUTTables:
    def test_matches_per_group_build(self, rng):
        groups = rng.standard_normal((5, 3, 4))
        tables = build_lut_tables(groups, dtype=np.float32)
        for i in range(5):
            for j in range(3):
                np.testing.assert_array_equal(
                    tables[i, j], build_lut_values(groups[i, j], dtype=np.float32))

    def test_integer_dtype(self):
        tables = build_lut_tables(np.array([[1, 2, 3]]), dtype=np.int64)
        assert tables.dtype == np.int64
        assert tables[0, 7] == 6 and tables[0, 0] == -6


class TestBatchedExecutorEquivalence:
    CASES = [
        # (m, n, bits, group_size) — multi-group tiles, ragged edges, µ padding
        (24, 32, 3, None),   # per-row scales, exact tiling
        (20, 30, 2, 6),      # scale groups finer than tile_n, ragged band
        (17, 29, 3, 5),      # group boundary inside a µ-group (padding)
        (8, 8, 1, 3),        # single plane, tiny groups
        (24, 32, 2, 16),     # groups aligned with bands
    ]

    @pytest.mark.parametrize("m,n,bits,group_size", CASES)
    @pytest.mark.parametrize("acc", [np.float16, np.float32, np.float64])
    def test_bit_exact_with_identical_stats(self, rng, m, n, bits, group_size, acc):
        bcq = _make_case(rng, m, n, bits, group_size)
        x = rng.standard_normal((n, 4))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y, stats = mpu.gemm(bcq, x, accumulate_dtype=acc)
        y_ref, stats_ref = mpu.gemm_reference(bcq, x, accumulate_dtype=acc)
        np.testing.assert_array_equal(y, y_ref)
        assert stats == stats_ref

    def test_vector_input_bit_exact(self, rng):
        bcq = _make_case(rng, 12, 22, 2, 5)
        x = rng.standard_normal(22)
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=8))
        y, stats = mpu.gemm(bcq, x, accumulate_dtype=np.float32)
        y_ref, stats_ref = mpu.gemm_reference(bcq, x, accumulate_dtype=np.float32)
        assert y.shape == (12,)
        np.testing.assert_array_equal(y, y_ref)
        assert stats == stats_ref

    def test_matches_dequantized_reference_across_groups(self, rng):
        # Default float64 accumulation stays exact even when every tile band
        # is split into several scale-group segments.
        bcq = _make_case(rng, 20, 30, 3, 6)
        x = rng.standard_normal((30, 5))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y, _ = mpu.gemm(bcq, x)
        np.testing.assert_allclose(y, bcq.dequantize() @ x, rtol=1e-9, atol=1e-9)

    def test_accumulate_dtype_honoured_when_tiles_span_groups(self, rng):
        # The seed fell back to an exact float64 matmul whenever a tile
        # spanned several scale groups, so fp32 and fp64 runs were bitwise
        # identical there.  With the split plan, the accumulator dtype must
        # leave a visible footprint.
        bcq = _make_case(rng, 20, 30, 2, 6)
        x = rng.standard_normal((30, 5))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y32, _ = mpu.gemm(bcq, x, accumulate_dtype=np.float32)
        y64, _ = mpu.gemm(bcq, x, accumulate_dtype=np.float64)
        assert not np.array_equal(y32, y64)
        np.testing.assert_allclose(y32, y64, rtol=1e-4, atol=1e-4)


class TestPlanStats:
    def test_plan_stats_match_executed_stats(self, rng):
        bcq = _make_case(rng, 20, 30, 3, 6)
        x = rng.standard_normal((30, 7))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        _, executed = mpu.gemm(bcq, x)
        assert mpu.plan_stats(bcq, batch=7) == executed

    def test_plan_stats_reject_negative_batch(self, rng):
        bcq = _make_case(rng, 8, 8, 2, None)
        with pytest.raises(ValueError):
            MatrixProcessingUnit().plan_stats(bcq, batch=-1)

    def test_quantized_lm_layer_stats(self):
        from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
        from repro.models.transformer import TransformerConfig, TransformerLM

        model = TransformerLM(TransformerConfig(vocab_size=13, max_seq_len=8,
                                                d_model=8, n_heads=2,
                                                n_layers=1, d_ff=16))
        qlm = QuantizedLM.build(model, QuantizationRecipe(method="bcq", bits=2),
                                engine="figlut-f")
        name = model.weight_matrix_names()[0]
        stats = qlm.layer_mpu_stats(name, batch=3,
                                    mpu_config=MPUConfig(pe_rows=2, pe_cols=1,
                                                         mu=4, k=4))
        assert stats.cycles > 0 and stats.lut_reads > 0
        with pytest.raises(KeyError):
            qlm.layer_mpu_stats("not-a-layer", batch=3)
