"""Mixed-precision (``per_row_bits``) tile execution and plan-driven costs.

The Fig. 17 "FIGLUT-Q2.4" configurations rest on the bit-serial property
that a row band quantized with ``q`` planes takes ``q`` passes.  These tests
pin that down end to end: the planner emits per-row-band plane counts, the
batched executor stays bit-exact against the scalar reference — outputs AND
``MPURunStats`` — on ragged ``per_row_bits`` spanning several row bands,
``plan_stats`` matches executed stats, cycles/LUT reads scale with
``mean(per_row_bits)`` rather than the padded plane-array depth, and the
plan-driven memory traffic equals Σ per-row stored bits plus ceil-divided
scale-group overhead.
"""

import numpy as np
import pytest

from repro.core.dataflow import TilingConfig, plan_bcq_tile_execution
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.hw.engines import engine_model
from repro.hw.memory import GEMMWorkloadShape, MemorySystemModel
from repro.hw.performance import (
    evaluate_workload,
    per_row_bits_for_average,
    plans_for_workload,
)
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed


def _mixed_case(rng, m, n, group_size, bits_choices=(1, 2, 3, 4), iterations=2):
    w = rng.standard_normal((m, n)) * 0.1
    row_bits = rng.choice(bits_choices, size=m)
    return quantize_bcq_mixed(w, row_bits,
                              BCQConfig(group_size=group_size,
                                        iterations=iterations))


class TestMixedPlanner:
    def test_row_bands_carry_band_max_planes(self):
        # tile_m = 4 → bands [0:4) and [4:6); planes = the band's widest row.
        row_bits = [1, 3, 2, 1, 2, 2]
        plan = plan_bcq_tile_execution(6, 8, bits=3,
                                       config=TilingConfig(tile_m=4, tile_n=8),
                                       mu=4, group_size=None,
                                       per_row_bits=row_bits)
        assert [band.planes for band in plan.row_bands] == [3, 2]
        # Active rows per plane: rows with per_row_bits > p.
        assert plan.row_bands[0].active_rows_per_plane == (4, 2, 1)
        assert plan.row_bands[1].active_rows_per_plane == (2, 2)
        assert plan.plane_bits_total == sum(row_bits)
        assert plan.mean_bits == pytest.approx(sum(row_bits) / 6)

    def test_num_steps_is_plan_weighted(self):
        plan = plan_bcq_tile_execution(6, 8, bits=3,
                                       config=TilingConfig(tile_m=4, tile_n=4),
                                       mu=4, group_size=None,
                                       per_row_bits=[1, 3, 2, 1, 2, 2])
        # Two column bands → two segments; bands execute 3 and 2 planes.
        assert plan.num_steps == 2 * (3 + 2)
        steps = list(plan.steps())
        assert len(steps) == plan.num_steps
        # A band's steps never exceed its own plane count.
        for step in steps:
            assert step.bit_plane < step.band.planes

    def test_uniform_plan_unchanged(self):
        explicit = plan_bcq_tile_execution(8, 8, bits=2,
                                           config=TilingConfig(tile_m=4, tile_n=4),
                                           mu=4, per_row_bits=[2] * 8)
        implicit = plan_bcq_tile_execution(8, 8, bits=2,
                                           config=TilingConfig(tile_m=4, tile_n=4),
                                           mu=4)
        assert explicit == implicit
        assert implicit.num_steps == implicit.num_tiles * 2
        assert implicit.plane_bits_total == 8 * 2

    def test_rejects_bad_per_row_bits(self):
        cfg = TilingConfig(tile_m=4, tile_n=4)
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=2, config=cfg, per_row_bits=[2, 2])
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=2, config=cfg,
                                    per_row_bits=[0, 2, 2, 2])
        with pytest.raises(ValueError):
            plan_bcq_tile_execution(4, 4, bits=2, config=cfg,
                                    per_row_bits=[3, 2, 2, 2])


class TestMixedQuantizer:
    def test_padded_planes_have_zero_scales(self, rng):
        bcq = _mixed_case(rng, 10, 16, group_size=5)
        for r in range(10):
            b = int(bcq.per_row_bits[r])
            assert np.all(bcq.scales[b:, r, :] == 0.0)
            assert np.all(np.isin(bcq.bitplanes[:, r, :], (-1, 1)))

    def test_rows_match_uniform_quantization(self, rng):
        # A row quantized at q bits inside a mixed tensor is identical to the
        # same row quantized through the uniform path at q bits.
        w = rng.standard_normal((6, 12)) * 0.1
        row_bits = np.array([2, 3, 2, 3, 2, 3])
        mixed = quantize_bcq_mixed(w, row_bits, BCQConfig(group_size=4, iterations=2))
        for bits in (2, 3):
            idx = np.flatnonzero(row_bits == bits)
            uni = quantize_bcq(w[idx], BCQConfig(bits=bits, group_size=4, iterations=2))
            np.testing.assert_array_equal(mixed.bitplanes[:bits, idx], uni.bitplanes)
            np.testing.assert_array_equal(mixed.scales[:bits, idx], uni.scales)
            np.testing.assert_array_equal(mixed.offsets[idx], uni.offsets)

    def test_storage_bits_counts_only_stored_planes(self, rng):
        w = rng.standard_normal((8, 16)) * 0.1
        row_bits = np.array([1, 2, 3, 4, 1, 2, 3, 4])
        bcq = quantize_bcq_mixed(w, row_bits, BCQConfig(group_size=8))
        stored = int(row_bits.sum())
        expected = stored * 16 + (stored * bcq.n_groups + bcq.offsets.size) * 16
        assert bcq.storage_bits() == expected
        # The padded plane array would overcount by (4*8 - 20) planes.
        assert bcq.storage_bits() < bcq.bitplanes.size + (
            bcq.scales.size + bcq.offsets.size) * 16

    def test_dequantize_ignores_padded_planes(self, rng):
        bcq = _mixed_case(rng, 9, 14, group_size=6)
        w_hat = bcq.dequantize()
        # Recompute per row from only the row's own planes.
        for r in range(9):
            b = int(bcq.per_row_bits[r])
            for g, csl in enumerate(bcq.column_groups()):
                manual = (bcq.bitplanes[:b, r, csl].astype(np.float64)
                          * bcq.scales[:b, r, g][:, None]).sum(axis=0) + bcq.offsets[r, g]
                np.testing.assert_allclose(w_hat[r, csl], manual)


class TestMixedExecutorEquivalence:
    CASES = [
        # (m, n, group_size) — row bands, ragged edges, µ padding all mixed
        (24, 32, None),
        (20, 30, 6),
        (17, 29, 5),
        (24, 32, 16),
    ]

    @pytest.mark.parametrize("m,n,group_size", CASES)
    @pytest.mark.parametrize("acc", [np.float32, np.float64])
    def test_bit_exact_with_identical_stats(self, rng, m, n, group_size, acc):
        bcq = _mixed_case(rng, m, n, group_size)
        assert len(np.unique(bcq.per_row_bits)) > 1  # genuinely mixed
        x = rng.standard_normal((n, 4))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y, stats = mpu.gemm(bcq, x, accumulate_dtype=acc)
        y_ref, stats_ref = mpu.gemm_reference(bcq, x, accumulate_dtype=acc)
        np.testing.assert_array_equal(y, y_ref)
        assert stats == stats_ref

    def test_matches_dequantized_reference(self, rng):
        bcq = _mixed_case(rng, 20, 30, 6)
        x = rng.standard_normal((30, 5))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y, _ = mpu.gemm(bcq, x)
        np.testing.assert_allclose(y, bcq.dequantize() @ x, rtol=1e-9, atol=1e-9)

    def test_plan_stats_match_executed_stats(self, rng):
        bcq = _mixed_case(rng, 20, 30, 6)
        x = rng.standard_normal((30, 7))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        _, executed = mpu.gemm(bcq, x)
        assert mpu.plan_stats(bcq, batch=7) == executed


class TestMixedCostsScaleWithMeanBits:
    def test_cycles_and_lut_reads_follow_mean_bits(self, rng):
        # A Q2.4-style tensor: 40% of rows at 3 planes, 60% at 2, padded
        # plane-array depth 3.  Costs must follow the 2.4-bit mean, not the
        # depth-3 array.
        m, n = 40, 32
        w = rng.standard_normal((m, n)) * 0.1
        row_bits = per_row_bits_for_average(m, 2.4)
        mixed = quantize_bcq_mixed(w, row_bits, BCQConfig(group_size=8, iterations=1))
        uniform3 = quantize_bcq(w, BCQConfig(bits=3, group_size=8, iterations=1))
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))

        s_mixed = mpu.plan_stats(mixed, batch=4)
        s_uni = mpu.plan_stats(uniform3, batch=4)
        assert mixed.bits == uniform3.bits == 3
        # LUT reads / accumulations / α multiplies are exactly mean-bits
        # weighted: Σ per-row bits = 2.4·m versus 3·m.
        assert s_mixed.lut_reads / s_uni.lut_reads == pytest.approx(2.4 / 3)
        assert s_mixed.accumulations / s_uni.accumulations == pytest.approx(2.4 / 3)
        assert s_mixed.scale_multiplications / s_uni.scale_multiplications == \
            pytest.approx(2.4 / 3)
        # Cycles follow the per-band pass counts (band max planes); with
        # 3-plane rows leading each band this stays below uniform-3.
        assert s_mixed.cycles < s_uni.cycles
        assert s_mixed.bit_planes_processed < s_uni.bit_planes_processed

    def test_quantized_lm_layer_stats_honour_mixed_recipe(self):
        from repro.models.quantized_model import (
            QuantizedLM,
            recipe_from_mixed_precision,
        )
        from repro.models.transformer import TransformerConfig, TransformerLM
        from repro.quant.mixed_precision import MixedPrecisionPlan

        model = TransformerLM(TransformerConfig(vocab_size=13, max_seq_len=8,
                                                d_model=8, n_heads=2,
                                                n_layers=1, d_ff=16))
        names = model.weight_matrix_names()
        bits_per_layer = {name: (2 if i % 2 == 0 else 4)
                          for i, name in enumerate(names)}
        plan = MixedPrecisionPlan(bits_per_layer=bits_per_layer,
                                  average_bits=3.0, total_error=0.0)
        recipe = recipe_from_mixed_precision(plan)
        qlm = QuantizedLM.build(model, recipe, engine="figlut-f")
        cfg = MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=4)
        # Per-layer counters scale with the layer's allocated bits.
        for name in names:
            stats = qlm.layer_mpu_stats(name, batch=3, mpu_config=cfg)
            tensor = qlm.quantized_weights[name]
            assert np.all(tensor.per_row_bits == bits_per_layer[name])
            m = tensor.shape[0]
            groups_total = qlm.layer_plan(name, cfg).lut_group_total
            assert stats.lut_reads == 3 * bits_per_layer[name] * m * groups_total
        total = qlm.model_mpu_stats(batch=3, mpu_config=cfg)
        assert total.lut_reads == sum(
            qlm.layer_mpu_stats(name, 3, cfg).lut_reads for name in names)


class TestPlanDrivenTraffic:
    def test_traffic_for_gemm_ceils_scale_groups(self):
        memory = MemorySystemModel(group_size=128)
        ragged = memory.traffic_for_gemm(GEMMWorkloadShape(64, 129, 1), 4)
        exact = memory.traffic_for_gemm(GEMMWorkloadShape(64, 256, 1), 4)
        # 129 columns span 2 scale groups, same overhead as 256 columns.
        ragged_overhead = ragged.dram_weight_bits - 64 * 129 * 4
        exact_overhead = exact.dram_weight_bits - 64 * 256 * 4
        assert ragged_overhead == exact_overhead
        # n < group_size keeps the single-group floor.
        small = memory.traffic_for_gemm(GEMMWorkloadShape(64, 100, 1), 4)
        assert small.dram_weight_bits - 64 * 100 * 4 == \
            64 * 1 * 16 * 4 + 64 * 1 * 16

    def test_plan_traffic_equals_stored_bits_plus_ceil_overhead(self):
        memory = MemorySystemModel(group_size=128)
        shape = GEMMWorkloadShape(m=96, n=200, batch=8)
        [plan] = plans_for_workload([shape], 2.5, group_size=memory.group_size)
        traffic = memory.traffic_for_plan(plan, shape.batch)
        stored = int(np.sum(per_row_bits_for_average(96, 2.5)))
        n_groups = -(-200 // 128)  # ceil: ragged n still stores both groups
        expected = stored * 200 + stored * n_groups * 16 + 96 * n_groups * 16
        assert traffic.dram_weight_bits == expected
        assert traffic.sram_weight_bits == expected
        # Activations re-read once per plan row band.
        assert traffic.sram_activation_bits == \
            traffic.dram_activation_bits * len(plan.row_bands)

    def test_uniform_plan_traffic_matches_geometric_estimate(self):
        memory = MemorySystemModel(group_size=128)
        shape = GEMMWorkloadShape(m=128, n=256, batch=4)
        [plan] = plans_for_workload([shape], 4, group_size=memory.group_size)
        plan_traffic = memory.traffic_for_plan(plan, shape.batch)
        geo_traffic = memory.traffic_for_gemm(shape, 4)
        assert plan_traffic.dram_weight_bits == geo_traffic.dram_weight_bits
        assert plan_traffic.dram_activation_bits == geo_traffic.dram_activation_bits

    def test_q24_vs_q4_weight_traffic_ratio(self):
        # Acceptance pin: Q2.4 DRAM weight traffic / uniform Q4 = 2.4/4 for
        # plane bits and per-plane scales alike (offsets are bit-independent).
        # Iso-peak (utilization=1.0) keeps the cycle ratio at the useful-ops
        # ratio; the schedule-derived default folds in band-max plane
        # passes, pinned separately in test_hw_engines_performance.py.
        memory = MemorySystemModel(group_size=128)
        shapes = [GEMMWorkloadShape(m=256, n=512, batch=8),
                  GEMMWorkloadShape(m=640, n=256, batch=8)]
        engine = engine_model("figlut-i", "fp16", 4)
        q24 = evaluate_workload(engine, shapes, 2.4, memory, utilization=1.0,
                                plans=plans_for_workload(shapes, 2.4,
                                                         group_size=128))
        q4 = evaluate_workload(engine, shapes, 4, memory, utilization=1.0,
                               plans=plans_for_workload(shapes, 4,
                                                        group_size=128))
        t24 = memory.traffic_for_workload(shapes, 0, plans=plans_for_workload(
            shapes, 2.4, group_size=128))
        t4 = memory.traffic_for_workload(shapes, 0, plans=plans_for_workload(
            shapes, 4, group_size=128))
        offsets = sum(s.m * -(-s.n // 128) * 16 for s in shapes)
        ratio = (t24.dram_weight_bits - offsets) / (t4.dram_weight_bits - offsets)
        assert ratio == pytest.approx(2.4 / 4, rel=1e-3)
        # Scheduled cycles follow the same mean-bits ratio, and the
        # reported weight precision is the realised mean.
        assert q24.compute_cycles / q4.compute_cycles == pytest.approx(2.4 / 4, rel=1e-3)
        assert q24.weight_bits == pytest.approx(2.4, rel=1e-3)

    def test_plans_reject_fixed_precision_engines(self):
        memory = MemorySystemModel()
        shapes = [GEMMWorkloadShape(m=64, n=128, batch=2)]
        plans = plans_for_workload(shapes, 2.4, group_size=128)
        with pytest.raises(ValueError):
            evaluate_workload(engine_model("figna", "fp16", 4), shapes, 2.4,
                              memory, plans=plans)

    def test_plan_shape_mismatch_raises(self):
        memory = MemorySystemModel()
        shapes = [GEMMWorkloadShape(m=64, n=128, batch=2)]
        plans = plans_for_workload([GEMMWorkloadShape(m=32, n=128, batch=2)],
                                   3, group_size=128)
        with pytest.raises(ValueError):
            memory.traffic_for_workload(shapes, 3, plans=plans)
