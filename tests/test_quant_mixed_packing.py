"""Tests for mixed-precision allocation and bit-plane packing."""

import numpy as np
import pytest

from repro.quant.mixed_precision import (
    allocate_mixed_precision,
    measure_layer_sensitivity,
)
from repro.quant.packing import (
    bitplane_storage_bits,
    pack_bitplanes,
    pack_uniform_to_bitplanes,
    unpack_bitplanes,
)


class TestLayerSensitivity:
    def test_error_decreases_with_bits(self, rng):
        weight = rng.standard_normal((16, 32)) * 0.1
        s = measure_layer_sensitivity("layer", weight, candidate_bits=(1, 2, 3, 4))
        errors = [s.error_by_bits[b] for b in (1, 2, 3, 4)]
        assert errors == sorted(errors, reverse=True)

    def test_activation_aware_error_uses_calibration(self, rng):
        weight = rng.standard_normal((8, 16)) * 0.1
        acts = rng.standard_normal((32, 16))
        s = measure_layer_sensitivity("layer", weight, candidate_bits=(2,), activations=acts)
        assert s.error_by_bits[2] > 0

    def test_marginal_gain_positive_for_extra_bit(self, rng):
        weight = rng.standard_normal((8, 32)) * 0.1
        s = measure_layer_sensitivity("layer", weight, candidate_bits=(2, 3))
        assert s.marginal_gain(2, 3) >= 0


class TestAllocateMixedPrecision:
    def _sensitivities(self, rng, scales=(1.0, 10.0, 0.1)):
        sens = []
        for i, scale in enumerate(scales):
            weight = rng.standard_normal((16, 32)) * scale
            sens.append(measure_layer_sensitivity(f"layer{i}", weight,
                                                   candidate_bits=(1, 2, 3, 4)))
        return sens

    def test_average_bits_within_budget(self, rng):
        sens = self._sensitivities(rng)
        plan = allocate_mixed_precision(sens, target_average_bits=2.4, min_bits=1, max_bits=4)
        assert plan.average_bits <= 2.4 + 1e-9
        assert all(1 <= b <= 4 for b in plan.bits_per_layer.values())

    def test_sensitive_layer_gets_more_bits(self, rng):
        sens = self._sensitivities(rng, scales=(0.01, 5.0, 0.01))
        plan = allocate_mixed_precision(sens, target_average_bits=2.0, min_bits=1, max_bits=4)
        assert plan.bits_per_layer["layer1"] >= max(plan.bits_per_layer["layer0"],
                                                    plan.bits_per_layer["layer2"])

    def test_full_budget_gives_max_bits(self, rng):
        sens = self._sensitivities(rng)
        plan = allocate_mixed_precision(sens, target_average_bits=4.0, min_bits=1, max_bits=4)
        assert all(b == 4 for b in plan.bits_per_layer.values())

    def test_out_of_range_target_raises(self, rng):
        sens = self._sensitivities(rng)
        with pytest.raises(ValueError):
            allocate_mixed_precision(sens, target_average_bits=5.0, min_bits=1, max_bits=4)

    def test_empty_layer_list_raises(self):
        with pytest.raises(ValueError):
            allocate_mixed_precision([], target_average_bits=2.0)


class TestPacking:
    def test_pack_unpack_roundtrip(self, rng):
        planes = rng.choice([-1, 1], size=(3, 8, 21)).astype(np.int8)
        packed = pack_bitplanes(planes)
        assert packed.dtype == np.uint8
        np.testing.assert_array_equal(unpack_bitplanes(packed, 21), planes)

    def test_pack_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bitplanes(np.zeros((1, 2, 3)))

    def test_pack_uniform_roundtrip_via_weights(self, rng):
        codes = rng.integers(0, 16, size=(6, 10))
        planes = pack_uniform_to_bitplanes(codes, bits=4)
        # Reconstruct codes from the sign planes (MSB first).
        rebuilt = np.zeros_like(codes)
        for i in range(4):
            rebuilt += ((planes[i] + 1) // 2).astype(np.int64) << (3 - i)
        np.testing.assert_array_equal(rebuilt, codes)

    def test_pack_uniform_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_uniform_to_bitplanes(np.array([[16]]), bits=4)

    def test_storage_bits_scales_with_bits(self):
        assert (bitplane_storage_bits((64, 64), 4, group_size=64)
                > bitplane_storage_bits((64, 64), 2, group_size=64))

    def test_storage_bits_counts_scales(self):
        bits = bitplane_storage_bits((4, 8), 2, group_size=8, scale_bits=16)
        assert bits == 4 * 8 * 2 + 2 * 4 * 1 * 16 + 4 * 1 * 16
