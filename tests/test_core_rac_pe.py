"""Tests for the RAC unit and the processing element."""

import numpy as np
import pytest

from repro.core.lut import FFLUT, HalfFFLUT, pattern_to_key
from repro.core.pe import ProcessingElement
from repro.core.rac import RAC


class TestRAC:
    def test_step_accumulates_lut_values(self, rng):
        x = rng.standard_normal(3)
        lut = FFLUT.from_activations(x)
        rac = RAC()
        rac.step(lut, key=7)
        rac.step(lut, key=0)
        assert rac.accumulator == pytest.approx(lut.values[7] + lut.values[0])
        assert rac.reads == 2 and rac.accumulations == 2

    def test_key_register_is_reused(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        rac = RAC()
        rac.load_key(5)
        rac.step(lut)
        rac.step(lut)
        assert rac.accumulator == pytest.approx(2 * lut.values[5])

    def test_step_without_key_raises(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        with pytest.raises(RuntimeError):
            RAC().step(lut)

    def test_drain_returns_and_clears(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        rac = RAC()
        rac.step(lut, key=1)
        value = rac.drain()
        assert value == pytest.approx(lut.values[1])
        assert rac.accumulator == 0.0

    def test_works_with_half_lut(self, rng):
        x = rng.standard_normal(4)
        half = HalfFFLUT.from_activations(x)
        full = FFLUT.from_activations(x)
        rac = RAC()
        rac.step(half, key=13)
        assert rac.accumulator == pytest.approx(full.values[13])

    def test_reset(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        rac = RAC()
        rac.step(lut, key=2)
        rac.reset()
        assert rac.accumulator == 0.0 and rac.key_register is None and rac.reads == 0


class TestProcessingElement:
    def test_partial_sums_match_reference(self, rng):
        mu, k = 4, 8
        pe = ProcessingElement(mu=mu, k=k)
        x = rng.standard_normal(mu)
        patterns = rng.choice([-1, 1], size=(k, mu))
        pe.load_activations(x)
        sums = pe.read_accumulate_patterns(patterns)
        np.testing.assert_allclose(sums, patterns @ x)

    def test_accumulation_over_multiple_groups(self, rng):
        mu, k = 2, 4
        pe = ProcessingElement(mu=mu, k=k)
        total = np.zeros(k)
        for _ in range(3):
            x = rng.standard_normal(mu)
            patterns = rng.choice([-1, 1], size=(k, mu))
            pe.load_activations(x)
            pe.read_accumulate_patterns(patterns)
            total += patterns @ x
        np.testing.assert_allclose(pe.drain(), total)

    def test_full_and_half_lut_agree(self, rng):
        mu, k = 4, 16
        x = rng.standard_normal(mu)
        keys = rng.integers(0, 1 << mu, size=k)
        pe_full = ProcessingElement(mu=mu, k=k, use_half_lut=False)
        pe_half = ProcessingElement(mu=mu, k=k, use_half_lut=True)
        pe_full.load_activations(x)
        pe_half.load_activations(x)
        np.testing.assert_allclose(pe_full.read_accumulate(keys), pe_half.read_accumulate(keys))

    def test_stats_track_reads_and_generations(self, rng):
        pe = ProcessingElement(mu=4, k=8)
        pe.load_activations(rng.standard_normal(4))
        pe.read_accumulate(rng.integers(0, 16, size=8))
        pe.read_accumulate(rng.integers(0, 16, size=8))
        assert pe.stats.lut_generations == 1
        assert pe.stats.lut_reads == 16
        assert pe.stats.generator_additions == 14

    def test_read_before_load_raises(self):
        pe = ProcessingElement(mu=4, k=4)
        with pytest.raises(RuntimeError):
            pe.read_accumulate(np.zeros(4, dtype=np.int64))

    def test_wrong_key_count_raises(self, rng):
        pe = ProcessingElement(mu=4, k=4)
        pe.load_activations(rng.standard_normal(4))
        with pytest.raises(ValueError):
            pe.read_accumulate(np.zeros(3, dtype=np.int64))

    def test_reset_clears_state(self, rng):
        pe = ProcessingElement(mu=4, k=4)
        pe.load_activations(rng.standard_normal(4))
        pe.read_accumulate(rng.integers(0, 16, size=4))
        pe.reset()
        assert pe.lut is None
        assert pe.stats.lut_reads == 0
        np.testing.assert_array_equal(pe.drain(), np.zeros(4))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessingElement(mu=0, k=4)
        with pytest.raises(ValueError):
            ProcessingElement(mu=4, k=0)
