"""Tests for LUT construction and the FFLUT / hFFLUT structures."""

import numpy as np
import pytest

from repro.core.lut import (
    FFLUT,
    HalfFFLUT,
    build_lut_values,
    key_to_pattern,
    lut_table_rows,
    pattern_to_key,
)


class TestKeys:
    def test_pattern_to_key_table2_convention(self):
        # {-1,-1,-1} -> 0, {+1,+1,+1} -> 7 (Table II).
        assert pattern_to_key([-1, -1, -1]) == 0
        assert pattern_to_key([+1, +1, +1]) == 7
        assert pattern_to_key([-1, +1, -1]) == 2
        assert pattern_to_key([+1, -1, +1]) == 5

    def test_key_to_pattern_roundtrip(self):
        for key in range(16):
            assert pattern_to_key(key_to_pattern(key, 4)) == key

    def test_pattern_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pattern_to_key([0, 1, -1])

    def test_key_out_of_range(self):
        with pytest.raises(ValueError):
            key_to_pattern(8, 3)


class TestBuildLUTValues:
    def test_matches_table2_for_mu3(self):
        x = np.array([1.0, 10.0, 100.0])
        values = build_lut_values(x)
        expected = [-111.0, -11 - 100 + 200, -1 - 10 + 10 * 2 - 100, 0, 0, 0, 0, 111.0]
        # Spot check the exact Table II rows instead of the sloppy arithmetic above.
        assert values[0] == -x.sum()                      # {-1,-1,-1}
        assert values[1] == -x[0] - x[1] + x[2]           # {-1,-1,+1}
        assert values[2] == -x[0] + x[1] - x[2]           # {-1,+1,-1}
        assert values[5] == +x[0] - x[1] + x[2]           # {+1,-1,+1}
        assert values[7] == x.sum()                       # {+1,+1,+1}
        assert len(values) == 8
        del expected

    def test_matches_explicit_inner_products(self, rng):
        x = rng.standard_normal(5)
        values = build_lut_values(x)
        for key in range(32):
            pattern = key_to_pattern(key, 5)
            assert values[key] == pytest.approx(float(pattern @ x))

    def test_vertical_symmetry(self, rng):
        x = rng.standard_normal(4)
        values = build_lut_values(x)
        np.testing.assert_allclose(values, -values[::-1])

    def test_integer_dtype(self):
        values = build_lut_values(np.array([1, 2, 3]), dtype=np.int64)
        assert values.dtype == np.int64
        assert values[7] == 6

    def test_rejects_empty_and_huge(self):
        with pytest.raises(ValueError):
            build_lut_values(np.array([]))
        with pytest.raises(ValueError):
            build_lut_values(np.zeros(17))

    def test_lut_table_rows_structure(self):
        rows = lut_table_rows(np.array([1.0, 2.0, 3.0]))
        assert len(rows) == 8
        patterns, keys, values = zip(*rows, strict=True)
        assert list(keys) == list(range(8))
        assert patterns[0] == (-1, -1, -1)
        assert values[0] == -6.0


class TestFFLUT:
    def test_read_matches_values(self, rng):
        x = rng.standard_normal(4)
        lut = FFLUT.from_activations(x)
        values = build_lut_values(x)
        for key in range(16):
            assert lut.read(key) == values[key]

    def test_read_many_counts_reads(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        lut.read_many(np.array([0, 1, 2, 7, 7]))
        assert lut.read_count == 5

    def test_read_out_of_range(self, rng):
        lut = FFLUT.from_activations(rng.standard_normal(3))
        with pytest.raises(KeyError):
            lut.read(8)

    def test_storage_entries(self, rng):
        assert FFLUT.from_activations(rng.standard_normal(4)).storage_entries() == 16


class TestHalfFFLUT:
    @pytest.mark.parametrize("mu", [1, 2, 3, 4, 6])
    def test_equivalent_to_full_lut(self, rng, mu):
        x = rng.standard_normal(mu)
        full = FFLUT.from_activations(x)
        half = HalfFFLUT.from_activations(x)
        for key in range(1 << mu):
            assert half.read(key) == pytest.approx(full.read(key))

    def test_storage_is_half(self, rng):
        x = rng.standard_normal(4)
        assert HalfFFLUT.from_activations(x).storage_entries() == 8

    def test_read_many_matches_scalar_reads(self, rng):
        x = rng.standard_normal(4)
        half = HalfFFLUT.from_activations(x)
        keys = rng.integers(0, 16, size=40)
        vectorised = half.read_many(keys)
        scalar = np.array([HalfFFLUT.from_activations(x).read(int(k)) for k in keys])
        np.testing.assert_allclose(vectorised, scalar)

    def test_out_of_range_key(self, rng):
        half = HalfFFLUT.from_activations(rng.standard_normal(3))
        with pytest.raises(KeyError):
            half.read(8)
