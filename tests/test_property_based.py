"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.lut import FFLUT, HalfFFLUT, build_lut_values, key_to_pattern, pattern_to_key
from repro.core.lut_generator import generate_full_lut, generator_addition_count, naive_addition_count
from repro.numerics.fixed import from_twos_complement, to_twos_complement
from repro.numerics.floats import cast_to_format
from repro.numerics.prealign import prealign, reconstruct
from repro.quant.bcq import BCQConfig, quantize_bcq, uniform_to_bcq
from repro.quant.packing import pack_bitplanes, unpack_bitplanes
from repro.quant.rtn import RTNConfig, quantize_rtn

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=32)


@st.composite
def activation_groups(draw, min_mu=1, max_mu=6):
    mu = draw(st.integers(min_value=min_mu, max_value=max_mu))
    return np.array(draw(st.lists(finite_floats, min_size=mu, max_size=mu)))


@st.composite
def weight_matrices(draw, max_rows=8, max_cols=16):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=2, max_value=max_cols))
    data = draw(hnp.arrays(np.float64, (rows, cols),
                           elements=st.floats(min_value=-5, max_value=5,
                                              allow_nan=False, allow_infinity=False)))
    return data


class TestLUTProperties:
    @given(activation_groups())
    @settings(max_examples=60, deadline=None)
    def test_lut_values_equal_signed_sums(self, x):
        values = build_lut_values(x)
        mu = x.size
        for key in (0, (1 << mu) - 1, (1 << mu) // 2):
            pattern = key_to_pattern(key, mu)
            assert np.isclose(values[key], float(pattern @ x), atol=1e-9)

    @given(activation_groups())
    @settings(max_examples=60, deadline=None)
    def test_vertical_symmetry_holds_for_any_input(self, x):
        values = build_lut_values(x)
        np.testing.assert_allclose(values, -values[::-1], atol=1e-9)

    @given(activation_groups(min_mu=2, max_mu=6))
    @settings(max_examples=40, deadline=None)
    def test_half_lut_always_equals_full_lut(self, x):
        full = FFLUT.from_activations(x)
        half = HalfFFLUT.from_activations(x)
        keys = np.arange(1 << x.size)
        np.testing.assert_allclose(half.read_many(keys), full.read_many(keys), atol=1e-9)

    @given(activation_groups())
    @settings(max_examples=40, deadline=None)
    def test_generator_matches_direct_construction(self, x):
        values, _ = generate_full_lut(x)
        np.testing.assert_allclose(values, build_lut_values(x), atol=1e-9)

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_generator_never_uses_more_adders_than_naive(self, mu):
        assert generator_addition_count(mu) <= max(naive_addition_count(mu, half=True), 0) or mu == 1

    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_key_pattern_roundtrip(self, mu, data):
        key = data.draw(st.integers(min_value=0, max_value=(1 << mu) - 1))
        assert pattern_to_key(key_to_pattern(key, mu)) == key


class TestQuantizationProperties:
    @given(weight_matrices(), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_rtn_error_bounded_by_half_step(self, weight, bits):
        qt = quantize_rtn(weight, RTNConfig(bits=bits, granularity="channel"))
        err = np.abs(qt.dequantize() - weight)
        assert np.max(err) <= np.max(qt.scales) / 2 + 1e-9

    @given(weight_matrices(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_uniform_to_bcq_is_always_exact(self, weight, bits):
        uniform = quantize_rtn(weight, RTNConfig(bits=bits, granularity="channel"))
        bcq = uniform_to_bcq(uniform)
        np.testing.assert_allclose(bcq.dequantize(), uniform.dequantize(), atol=1e-8)

    @given(weight_matrices(max_rows=4, max_cols=12), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_bcq_bitplanes_always_binary(self, weight, bits):
        qt = quantize_bcq(weight, BCQConfig(bits=bits, iterations=2))
        assert set(np.unique(qt.bitplanes)) <= {-1, 1}
        assert np.all(qt.scales >= 0)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=40), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_bitplane_packing_roundtrip(self, bits, rows, cols, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        planes = rng.choice([-1, 1], size=(bits, rows, cols)).astype(np.int8)
        np.testing.assert_array_equal(unpack_bitplanes(pack_bitplanes(planes), cols), planes)


class TestNumericsProperties:
    @given(hnp.arrays(np.float64, st.integers(min_value=1, max_value=32),
                      elements=st.floats(min_value=-1e3, max_value=1e3,
                                         allow_nan=False, allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_prealign_error_bounded_by_one_aligned_lsb(self, values):
        cast = cast_to_format(values, "fp16")
        block = prealign(cast, fmt="fp16")
        err = np.abs(reconstruct(block) - cast)
        assert np.max(err) <= block.scale + 1e-12

    @given(st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_twos_complement_roundtrip(self, values):
        arr = np.array(values)
        np.testing.assert_array_equal(from_twos_complement(to_twos_complement(arr, 8), 8), arr)

    @given(hnp.arrays(np.float64, st.integers(min_value=1, max_value=64),
                      elements=st.floats(min_value=-50, max_value=50,
                                         allow_nan=False, allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_fp16_cast_is_idempotent(self, values):
        once = cast_to_format(values, "fp16")
        twice = cast_to_format(once, "fp16")
        np.testing.assert_array_equal(once, twice)
