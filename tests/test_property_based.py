"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.lut import FFLUT, HalfFFLUT, build_lut_values, key_to_pattern, pattern_to_key
from repro.core.lut_generator import generate_full_lut, generator_addition_count, naive_addition_count
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.numerics.fixed import from_twos_complement, to_twos_complement
from repro.numerics.floats import cast_to_format
from repro.numerics.prealign import prealign, reconstruct
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed, uniform_to_bcq
from repro.quant.packing import pack_bitplanes, unpack_bitplanes
from repro.quant.rtn import RTNConfig, quantize_rtn
from repro.serve import merge_shard_outputs, shard_plan
from repro.serve.sharding import compile_shard_programs

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=32)


@st.composite
def activation_groups(draw, min_mu=1, max_mu=6):
    mu = draw(st.integers(min_value=min_mu, max_value=max_mu))
    return np.array(draw(st.lists(finite_floats, min_size=mu, max_size=mu)))


@st.composite
def weight_matrices(draw, max_rows=8, max_cols=16):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=2, max_value=max_cols))
    data = draw(hnp.arrays(np.float64, (rows, cols),
                           elements=st.floats(min_value=-5, max_value=5,
                                              allow_nan=False, allow_infinity=False)))
    return data


class TestLUTProperties:
    @given(activation_groups())
    @settings(max_examples=60, deadline=None)
    def test_lut_values_equal_signed_sums(self, x):
        values = build_lut_values(x)
        mu = x.size
        for key in (0, (1 << mu) - 1, (1 << mu) // 2):
            pattern = key_to_pattern(key, mu)
            assert np.isclose(values[key], float(pattern @ x), atol=1e-9)

    @given(activation_groups())
    @settings(max_examples=60, deadline=None)
    def test_vertical_symmetry_holds_for_any_input(self, x):
        values = build_lut_values(x)
        np.testing.assert_allclose(values, -values[::-1], atol=1e-9)

    @given(activation_groups(min_mu=2, max_mu=6))
    @settings(max_examples=40, deadline=None)
    def test_half_lut_always_equals_full_lut(self, x):
        full = FFLUT.from_activations(x)
        half = HalfFFLUT.from_activations(x)
        keys = np.arange(1 << x.size)
        np.testing.assert_allclose(half.read_many(keys), full.read_many(keys), atol=1e-9)

    @given(activation_groups())
    @settings(max_examples=40, deadline=None)
    def test_generator_matches_direct_construction(self, x):
        values, _ = generate_full_lut(x)
        np.testing.assert_allclose(values, build_lut_values(x), atol=1e-9)

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_generator_never_uses_more_adders_than_naive(self, mu):
        assert generator_addition_count(mu) <= max(naive_addition_count(mu, half=True), 0) or mu == 1

    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_key_pattern_roundtrip(self, mu, data):
        key = data.draw(st.integers(min_value=0, max_value=(1 << mu) - 1))
        assert pattern_to_key(key_to_pattern(key, mu)) == key


class TestQuantizationProperties:
    @given(weight_matrices(), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_rtn_error_bounded_by_half_step(self, weight, bits):
        qt = quantize_rtn(weight, RTNConfig(bits=bits, granularity="channel"))
        err = np.abs(qt.dequantize() - weight)
        assert np.max(err) <= np.max(qt.scales) / 2 + 1e-9

    @given(weight_matrices(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_uniform_to_bcq_is_always_exact(self, weight, bits):
        uniform = quantize_rtn(weight, RTNConfig(bits=bits, granularity="channel"))
        bcq = uniform_to_bcq(uniform)
        np.testing.assert_allclose(bcq.dequantize(), uniform.dequantize(), atol=1e-8)

    @given(weight_matrices(max_rows=4, max_cols=12), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_bcq_bitplanes_always_binary(self, weight, bits):
        qt = quantize_bcq(weight, BCQConfig(bits=bits, iterations=2))
        assert set(np.unique(qt.bitplanes)) <= {-1, 1}
        assert np.all(qt.scales >= 0)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=40), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_bitplane_packing_roundtrip(self, bits, rows, cols, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        planes = rng.choice([-1, 1], size=(bits, rows, cols)).astype(np.int8)
        np.testing.assert_array_equal(unpack_bitplanes(pack_bitplanes(planes), cols), planes)


class TestNumericsProperties:
    @given(hnp.arrays(np.float64, st.integers(min_value=1, max_value=32),
                      elements=st.floats(min_value=-1e3, max_value=1e3,
                                         allow_nan=False, allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_prealign_error_bounded_by_one_aligned_lsb(self, values):
        cast = cast_to_format(values, "fp16")
        block = prealign(cast, fmt="fp16")
        err = np.abs(reconstruct(block) - cast)
        assert np.max(err) <= block.scale + 1e-12

    @given(st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_twos_complement_roundtrip(self, values):
        arr = np.array(values)
        np.testing.assert_array_equal(from_twos_complement(to_twos_complement(arr, 8), 8), arr)

    @given(hnp.arrays(np.float64, st.integers(min_value=1, max_value=64),
                      elements=st.floats(min_value=-50, max_value=50,
                                         allow_nan=False, allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_fp16_cast_is_idempotent(self, values):
        once = cast_to_format(values, "fp16")
        twice = cast_to_format(once, "fp16")
        np.testing.assert_array_equal(once, twice)


def _random_case(seed):
    """One randomized (mpu, tensor, x, acc_dtype) executor-equivalence case.

    Seeded ``default_rng`` rather than hypothesis: the space is cheap to
    sample directly and each sample exercises the whole planner → compiler
    → executor stack, where shrinking would not help diagnosis anyway.
    """
    rng = np.random.default_rng(987 + seed)
    m = int(rng.integers(4, 28))
    n = int(rng.integers(5, 30))
    group_size = int(rng.integers(3, min(n, 9) + 1))
    w = rng.standard_normal((m, n)) * 0.1
    if rng.random() < 0.5:
        bits = int(rng.integers(1, 5))
        tensor = quantize_bcq(w, BCQConfig(bits=bits, group_size=group_size,
                                           iterations=1))
    else:
        row_bits = rng.integers(1, 5, size=m)
        tensor = quantize_bcq_mixed(w, row_bits,
                                    BCQConfig(group_size=group_size,
                                              iterations=1))
    cfg = MPUConfig(pe_rows=int(rng.integers(1, 5)),
                    pe_cols=int(rng.integers(1, 5)),
                    mu=int(rng.choice([2, 3, 4])),
                    k=int(rng.integers(1, 4)))
    batch = int(rng.integers(1, 9))
    x = rng.standard_normal((n, batch))
    acc = rng.choice([np.float16, np.float32, np.float64])
    return MatrixProcessingUnit(cfg), tensor, x, acc


class TestExecutorEquivalenceSweep:
    """Randomized sweep over shapes × groupings × precisions × geometries:
    the compiled executor, the interpreted executor, and the scalar
    reference agree bitwise — outputs and stats — and sharded compiled
    programs merge exactly like interpreted shards."""

    @pytest.mark.parametrize("seed", range(10))
    def test_compiled_interpreted_reference_identical(self, seed):
        mpu, tensor, x, acc = _random_case(seed)
        y_c, s_c = mpu.gemm(tensor, x, accumulate_dtype=acc)
        y_i, s_i = mpu.gemm(tensor, x, accumulate_dtype=acc,
                            executor="interpreted")
        y_r, s_r = mpu.gemm(tensor, x, accumulate_dtype=acc,
                            executor="reference")
        np.testing.assert_array_equal(y_c, y_i)
        np.testing.assert_array_equal(y_c, y_r)
        assert s_c == s_i == s_r

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_sharded_compiled_merges_like_interpreted(self, seed, num_shards):
        mpu, tensor, x, _ = _random_case(seed)
        plan = mpu.plan(tensor)
        y_full, stats_full = mpu.gemm(tensor, x)

        # Row axis: compiled per-shard programs scatter-merge bit-exactly.
        shards = shard_plan(plan, num_shards, axis="rows")
        programs = compile_shard_programs(shards, tensor, mpu.config)
        merged, stats = merge_shard_outputs(
            shards, [prog.execute(x) for prog in programs])
        np.testing.assert_array_equal(merged, y_full)
        assert stats == stats_full

        # Segment axis: each compiled sub-program is bitwise the interpreted
        # shard; the summing merge keeps stats exact and outputs to rounding.
        shards = shard_plan(plan, num_shards, axis="segments")
        programs = compile_shard_programs(shards, tensor, mpu.config)
        results = []
        for shard, prog in zip(shards, programs, strict=True):
            y_s, s_s = prog.execute(x)
            y_int, s_int = mpu.gemm(tensor, x, shard=shard,
                                    executor="interpreted")
            np.testing.assert_array_equal(y_s, y_int)
            assert s_s == s_int
            results.append((y_s, s_s))
        merged, stats = merge_shard_outputs(shards, results)
        assert stats == stats_full
        np.testing.assert_allclose(merged, y_full, rtol=0, atol=1e-12)
