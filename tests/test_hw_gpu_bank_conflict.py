"""Tests for the bank-conflict simulator and the GPU roofline models."""

import numpy as np
import pytest

from repro.hw.bank_conflict import (
    BankConflictConfig,
    expected_conflict_factor,
    simulate_lut_reads,
)
from repro.hw.gpu import A100, H100, gpu_fp16_gemm, gpu_lutgemm_q4
from repro.models.opt import decoder_gemm_shapes


class TestBankConflicts:
    def test_identical_keys_broadcast_without_conflict(self):
        keys = np.full((16, 32), 3)
        result = simulate_lut_reads(keys)
        assert result.conflict_factor == 1.0
        assert result.conflict_free_fraction == 1.0

    def test_worst_case_all_distinct_same_bank(self):
        config = BankConflictConfig(mu=8, entry_bytes=4, word_bytes=4)
        # Keys spaced by num_banks map to the same bank with distinct addresses.
        keys = (np.arange(32) * config.num_banks)[None, :] % (1 << config.mu)
        result = simulate_lut_reads(keys, config)
        assert result.worst_case_factor > 4

    def test_random_keys_cause_conflicts(self):
        factor = expected_conflict_factor(BankConflictConfig(mu=8), cycles=512, seed=1)
        assert factor > 1.5

    def test_construction_phase_layout_reduces_conflicts(self, rng):
        config = BankConflictConfig(mu=8, entry_bytes=4, word_bytes=4)
        keys = np.tile(np.arange(32)[None, :], (64, 1))
        shared = simulate_lut_reads(keys, config, per_thread_tables=False)
        private = simulate_lut_reads(keys, config, per_thread_tables=True)
        assert private.conflict_factor <= shared.conflict_factor

    def test_key_range_validation(self):
        with pytest.raises(ValueError):
            simulate_lut_reads(np.full((2, 32), 256), BankConflictConfig(mu=8))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            simulate_lut_reads(np.zeros((4, 16), dtype=int))


class TestGPUModels:
    @pytest.fixture(scope="class")
    def shapes(self):
        return decoder_gemm_shapes("opt-6.7b", batch=32)

    def test_a100_fp16_near_paper_measurement(self, shapes):
        result = gpu_fp16_gemm(A100, shapes)
        assert result.throughput_tops == pytest.approx(40.27, rel=0.15)
        assert result.tops_per_watt == pytest.approx(0.21, rel=0.15)

    def test_h100_fp16_near_paper_measurement(self, shapes):
        result = gpu_fp16_gemm(H100, shapes)
        assert result.throughput_tops == pytest.approx(62.08, rel=0.15)
        assert result.tops_per_watt == pytest.approx(0.22, rel=0.15)

    def test_h100_more_efficient_than_a100(self, shapes):
        assert gpu_fp16_gemm(H100, shapes).tops_per_watt > gpu_fp16_gemm(A100, shapes).tops_per_watt

    def test_lutgemm_much_slower_than_tensor_cores(self, shapes):
        lut = gpu_lutgemm_q4(A100, shapes)
        fp16 = gpu_fp16_gemm(A100, shapes)
        assert lut.throughput_tops < fp16.throughput_tops / 5
        assert lut.throughput_tops == pytest.approx(1.85, rel=0.5)

    def test_memory_bound_small_batch(self):
        small = decoder_gemm_shapes("opt-6.7b", batch=1)
        large = decoder_gemm_shapes("opt-6.7b", batch=32)
        assert gpu_fp16_gemm(A100, small).throughput_tops < gpu_fp16_gemm(A100, large).throughput_tops

    def test_empty_workload_raises(self):
        with pytest.raises(ValueError):
            gpu_fp16_gemm(A100, [])
