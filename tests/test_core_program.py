"""Plan-compiler tests: compiled programs vs the interpreted/scalar oracles.

The compilation contract (``docs/compilation.md``): for every plan family —
uniform, ragged, mixed per-row precision — and every accumulator dtype, the
:class:`~repro.core.program.CompiledProgram` produced by
:func:`~repro.core.program.compile_plan` is **bit-identical** to the
interpreted executor and to the scalar ``gemm_reference``, outputs *and*
:class:`~repro.core.mpu.MPURunStats`.  Segment-axis sub-programs match the
interpreted shard path bitwise and merge exactly; the shared-memory
``spec()``/``buffers()``/``from_buffers()`` roundtrip preserves execution;
batch chunking never changes a bit.
"""

import pickle

import numpy as np
import pytest

import repro.core.program as program_mod
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.core.program import CompiledProgram, compile_plan
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
from repro.serve import compile_shard_programs, merge_shard_outputs, shard_plan

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)  # tile 4×8

KINDS = ["uniform", "ragged", "mixed"]


def _case(rng, kind):
    """(tensor, activations) exercising one plan family (ragged everything)."""
    if kind == "uniform":
        w = rng.standard_normal((32, 32)) * 0.1
        tensor = quantize_bcq(w, BCQConfig(bits=3, group_size=8, iterations=1))
    elif kind == "ragged":
        w = rng.standard_normal((29, 27)) * 0.1
        tensor = quantize_bcq(w, BCQConfig(bits=3, group_size=7, iterations=1))
    else:  # mixed per-row precision, incl. rows below max_planes
        w = rng.standard_normal((30, 26)) * 0.1
        row_bits = rng.choice([1, 2, 3, 4], size=30)
        tensor = quantize_bcq_mixed(w, row_bits,
                                    BCQConfig(group_size=6, iterations=1))
    x = rng.standard_normal((tensor.shape[1], 5))
    return tensor, x


def _assert_same(lhs, rhs):
    """Outputs and stats bitwise equal (the compilation contract)."""
    y_l, s_l = lhs
    y_r, s_r = rhs
    np.testing.assert_array_equal(y_l, y_r)
    assert s_l == s_r


class TestCompiledEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("acc", [np.float16, np.float32, np.float64])
    def test_compiled_matches_interpreted_and_reference(self, rng, kind, acc):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        compiled = mpu.gemm(tensor, x, accumulate_dtype=acc)
        _assert_same(compiled, mpu.gemm(tensor, x, accumulate_dtype=acc,
                                        executor="interpreted"))
        _assert_same(compiled, mpu.gemm(tensor, x, accumulate_dtype=acc,
                                        executor="reference"))

    @pytest.mark.parametrize("kind", KINDS)
    def test_prepare_embeds_program_and_runs_it(self, rng, kind):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        prepared = mpu.prepare(tensor)
        assert isinstance(prepared.program, CompiledProgram)
        # The prepared fast path, the embedded program directly, and an
        # on-the-fly compile from the raw tensor all agree bitwise.
        _assert_same(mpu.gemm(prepared, x), prepared.program.execute(x))
        fresh = compile_plan(prepared.plan, tensor, MPU_CFG)
        _assert_same(mpu.gemm(prepared, x), fresh.execute(x))

    def test_vector_input_squeezes(self, rng):
        tensor, x = _case(rng, "ragged")
        mpu = MatrixProcessingUnit(MPU_CFG)
        y, stats = mpu.gemm(tensor, x[:, 0])
        assert y.shape == (tensor.shape[0],)
        y2, stats2 = mpu.gemm(tensor, x[:, 0], executor="interpreted")
        _assert_same((y, stats), (y2, stats2))

    def test_batch_chunking_is_exact(self, rng):
        # A one-element gather budget forces a chunk per batch column; the
        # numerics must not move (no reduction crosses batch columns).
        tensor, x = _case(rng, "mixed")
        whole = MatrixProcessingUnit(MPU_CFG).prepare(tensor) \
            .program.execute(x, accumulate_dtype=np.float32)
        tiny = MatrixProcessingUnit(_budget_cfg(1)).prepare(tensor).program
        assert tiny.gather_budget == 1
        _assert_same(whole, tiny.execute(x, accumulate_dtype=np.float32))


def _budget_cfg(budget):
    return MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2, gather_budget=budget)


class TestGatherBudget:
    """The budget knob really changes the chunking — on both tiers — and
    resolves config field > environment > module default."""

    def test_budget_changes_fused_batch_step(self, rng):
        tensor, x = _case(rng, "uniform")
        default = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        tiny = MatrixProcessingUnit(_budget_cfg(1)).prepare(tensor).program
        rows = default.passes[0].keys.shape[1]
        assert default.batch_step(rows) >= x.shape[1]  # one whole-batch chunk
        assert tiny.batch_step(rows) == 1              # one column at a time
        _assert_same(default.execute(x), tiny.execute(x))

    def test_budget_changes_blocked_block_count(self, rng):
        tensor, x = _case(rng, "uniform")
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        coarse = compile_plan(plan, tensor, MPU_CFG, tier="blocked")
        fine = compile_plan(plan, tensor, _budget_cfg(1), tier="blocked")

        def blocks(prog):
            return [op for op in prog.instructions if op[0] == "plane_block"]

        assert len(blocks(coarse)) == len(coarse.passes)  # 1 block per plane
        assert len(blocks(fine)) == len(fine.passes) * fine.num_segments
        _assert_same(coarse.execute(x), fine.execute(x))

    def test_env_budget_applies(self, rng, monkeypatch):
        tensor, _ = _case(rng, "uniform")
        monkeypatch.setenv("REPRO_GATHER_BUDGET", "12345")
        prog = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        assert prog.gather_budget == 12345

    def test_config_budget_beats_env(self, rng, monkeypatch):
        tensor, _ = _case(rng, "uniform")
        monkeypatch.setenv("REPRO_GATHER_BUDGET", "7")
        prog = MatrixProcessingUnit(_budget_cfg(123)).prepare(tensor).program
        assert prog.gather_budget == 123

    def test_default_budget_without_overrides(self, rng, monkeypatch):
        tensor, _ = _case(rng, "uniform")
        monkeypatch.delenv("REPRO_GATHER_BUDGET", raising=False)
        prog = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        assert prog.gather_budget == program_mod._GATHER_BUDGET

    @pytest.mark.parametrize("env", ["zero", "0", "-4"])
    def test_invalid_env_budget_rejected(self, rng, env, monkeypatch):
        tensor, _ = _case(rng, "uniform")
        monkeypatch.setenv("REPRO_GATHER_BUDGET", env)
        with pytest.raises(ValueError):
            MatrixProcessingUnit(MPU_CFG).prepare(tensor)

    def test_invalid_config_budget_rejected(self):
        with pytest.raises(ValueError):
            _budget_cfg(0)


class TestProgramStructure:
    def test_instruction_list_is_complete(self, rng):
        tensor, _ = _case(rng, "ragged")
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        prog = compile_plan(plan, tensor, MPU_CFG)
        n_planes = len(prog.passes)
        n_seg = len(plan.segments)
        assert prog.num_segments == n_seg
        assert prog.num_slots == n_seg * prog.slots_per_segment
        expected = 1 + n_planes + n_seg * n_planes + plan.num_scale_groups
        assert len(prog.instructions) == expected
        # Scale updates replay the interpreter's order: segments ascending,
        # planes innermost.
        scales = [op[1:] for op in prog.instructions if op[0] == "scale"]
        assert scales == [(s, p) for s in range(n_seg) for p in range(n_planes)]

    @pytest.mark.parametrize("batch", [0, 1, 3, 17])
    def test_stats_affine_in_batch(self, rng, batch):
        tensor, _ = _case(rng, "mixed")
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        prog = compile_plan(plan, tensor, MPU_CFG)
        assert prog.stats(batch) == mpu.stats_from_plan(plan, batch)

    def test_stats_rejects_negative_batch(self, rng):
        tensor, _ = _case(rng, "uniform")
        prog = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        with pytest.raises(ValueError, match="batch"):
            prog.stats(-1)

    @pytest.mark.parametrize("kind", KINDS)
    def test_buffers_spec_roundtrip(self, rng, kind):
        # The process-backend shipping path: spec travels by pickle, arrays
        # as raw buffers; the rebuilt program executes bit-identically.
        tensor, x = _case(rng, kind)
        prog = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        spec = pickle.loads(pickle.dumps(prog.spec()))
        rebuilt = CompiledProgram.from_buffers(spec, prog.buffers())
        _assert_same(prog.execute(x, accumulate_dtype=np.float32),
                     rebuilt.execute(x, accumulate_dtype=np.float32))


class TestShardPrograms:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("num_shards", [2, 7])
    def test_segment_subprograms_match_interpreted_shards(self, rng, kind,
                                                          num_shards):
        tensor, x = _case(rng, kind)
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        shards = shard_plan(plan, num_shards, axis="segments")
        programs = compile_shard_programs(shards, tensor, MPU_CFG)
        results = []
        for shard, prog in zip(shards, programs, strict=True):
            compiled = prog.execute(x)
            _assert_same(compiled, mpu.gemm(tensor, x, shard=shard,
                                            executor="interpreted"))
            results.append(compiled)
        y, stats = merge_shard_outputs(shards, results)
        y_full, stats_full = mpu.gemm(tensor, x)
        assert stats == stats_full  # counters exactly additive
        np.testing.assert_allclose(y, y_full, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_row_programs_merge_bit_exact(self, rng, num_shards):
        tensor, x = _case(rng, "mixed")
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        shards = shard_plan(plan, num_shards, axis="rows")
        programs = compile_shard_programs(shards, tensor, MPU_CFG)
        results = [prog.execute(x) for prog in programs]
        merged = merge_shard_outputs(shards, results)
        _assert_same(merged, mpu.gemm(tensor, x))


class TestProgramErrors:
    def test_wrong_activation_rows(self, rng):
        tensor, x = _case(rng, "uniform")
        prog = MatrixProcessingUnit(MPU_CFG).prepare(tensor).program
        with pytest.raises(ValueError, match="activation rows"):
            prog.execute(x[:-1])

    def test_plan_weights_shape_mismatch(self, rng):
        tensor, _ = _case(rng, "uniform")
        other, _ = _case(rng, "ragged")
        plan = MatrixProcessingUnit(MPU_CFG).plan(tensor)
        with pytest.raises(ValueError, match="does not match"):
            compile_plan(plan, other, MPU_CFG)

    def test_row_axis_shard_has_no_subprogram(self, rng):
        tensor, _ = _case(rng, "uniform")
        plan = MatrixProcessingUnit(MPU_CFG).plan(tensor)
        shard = shard_plan(plan, 2, axis="rows")[0]
        with pytest.raises(ValueError, match="row-axis"):
            compile_plan(plan, tensor, MPU_CFG, shard=shard)

    def test_shard_from_other_plan_rejected(self, rng):
        tensor, _ = _case(rng, "ragged")
        mpu = MatrixProcessingUnit(MPU_CFG)
        plan = mpu.plan(tensor)
        other_plan = MatrixProcessingUnit(MPUConfig(pe_rows=4, pe_cols=2,
                                                    mu=4, k=2)).plan(tensor)
        shard = shard_plan(other_plan, 2, axis="segments")[0]
        with pytest.raises(ValueError, match="different plan"):
            compile_plan(plan, tensor, MPU_CFG, shard=shard)

    def test_unknown_executor_name(self, rng):
        tensor, x = _case(rng, "uniform")
        with pytest.raises(ValueError, match="executor"):
            MatrixProcessingUnit(MPU_CFG).gemm(tensor, x, executor="jit")
