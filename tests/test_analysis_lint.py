"""Tests for the repo lint framework (repro.analysis.lint + rules).

Covers the `# repro: bit-exact` marker scoping, `# repro: noqa`
suppression, each rule's positive and negative cases, and pins the
repo's own lint state: src/ must stay at zero live findings, with the
deliberate suppressions still visible for audit.
"""

from pathlib import Path
from textwrap import dedent

from repro.analysis import lint_paths, lint_source
from repro.analysis.lint import ModuleContext, bit_exact_lines, parse_suppressions
from repro.analysis.rules import default_rules
from repro.analysis.rules.bitexact import (
    AccumulatorDtypeLiteralRule,
    ReassociatingReductionRule,
)
from repro.analysis.rules.concurrency import (
    LockAcrossAwaitRule,
    UnlockedSharedStateRule,
)
from repro.analysis.rules.hygiene import MutableDefaultArgRule
from repro.analysis.rules.timing import WallClockInServeRule

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def rules_of(findings, *, live_only=False):
    return sorted({f.rule for f in findings if not (live_only and f.suppressed)})


def live(findings):
    return [f for f in findings if not f.suppressed]


class TestMarkers:
    def test_module_preamble_marker_covers_whole_module(self):
        src = dedent("""\
            '''Module docstring.'''
            # repro: bit-exact
            import numpy as np

            def f(a, b):
                return np.dot(a, b)
        """)
        ctx = ModuleContext.from_source(src)
        assert ctx.is_bit_exact(1) and ctx.is_bit_exact(6)
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert [f.rule for f in findings] == ["reassociating-reduction"]

    def test_def_marker_covers_only_that_function(self):
        src = dedent("""\
            import numpy as np

            def exact(a, b):  # repro: bit-exact
                return a @ b

            def free(a, b):
                return a @ b
        """)
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert len(findings) == 1
        assert findings[0].line == 4  # only inside exact()

    def test_marker_on_line_above_def(self):
        src = dedent("""\
            import numpy as np

            # repro: bit-exact
            def exact(a, b):
                return np.einsum('ij,jk->ik', a, b)
        """)
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert len(findings) == 1

    def test_unmarked_module_has_no_bit_exact_findings(self):
        src = "import numpy as np\n\ndef f(a, b):\n    return a @ b\n"
        tree = ModuleContext.from_source(src)
        assert not tree.bit_exact
        assert lint_source(src, rules=[ReassociatingReductionRule()]) == []


class TestSuppression:
    SRC = dedent("""\
        # repro: bit-exact
        import numpy as np

        def f(a, b):
            return np.dot(a, b)  {noqa}
    """)

    def test_matching_noqa_suppresses(self):
        src = self.SRC.format(noqa="# repro: noqa reassociating-reduction")
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert len(findings) == 1 and findings[0].suppressed

    def test_wrong_rule_noqa_does_not_suppress(self):
        src = self.SRC.format(noqa="# repro: noqa mutable-default-argument")
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert len(findings) == 1 and not findings[0].suppressed

    def test_bare_noqa_suppresses_every_rule(self):
        src = self.SRC.format(noqa="# repro: noqa")
        findings = lint_source(src)
        assert findings and all(f.suppressed for f in findings)

    def test_parse_suppressions_rule_lists(self):
        sup = parse_suppressions((
            "x = 1  # repro: noqa rule-a, rule-b",
            "y = 2",
            "z = 3  # repro: noqa",
        ))
        assert sup == {1: {"rule-a", "rule-b"}, 3: {"*"}}

    def test_finding_str_names_rule_and_suppression(self):
        src = self.SRC.format(noqa="# repro: noqa reassociating-reduction")
        (finding,) = lint_source(src, path="mod.py",
                                 rules=[ReassociatingReductionRule()])
        text = str(finding)
        assert text.startswith("mod.py:5: [reassociating-reduction]")
        assert text.endswith("(suppressed)")


class TestReassociatingReduction:
    def test_flags_matmul_operator_and_sum(self):
        src = dedent("""\
            # repro: bit-exact
            import numpy as np

            def f(a, b):
                y = a @ b
                y += a.sum(axis=0)
                return y
        """)
        findings = lint_source(src, rules=[ReassociatingReductionRule()])
        assert len(findings) == 2

    def test_ignores_elementwise_math(self):
        src = dedent("""\
            # repro: bit-exact
            import numpy as np

            def f(a, b):
                return a * b + np.abs(a)
        """)
        assert lint_source(src, rules=[ReassociatingReductionRule()]) == []


class TestAccumulatorDtypeLiteral:
    def test_flags_float32_attr_and_dtype_string(self):
        src = dedent("""\
            # repro: bit-exact
            import numpy as np

            def f(a):
                acc = np.zeros(3, dtype=np.float32)
                return a.astype(dtype="float16") + acc
        """)
        findings = lint_source(src, rules=[AccumulatorDtypeLiteralRule()])
        assert len(findings) == 2

    def test_float64_is_allowed(self):
        src = dedent("""\
            # repro: bit-exact
            import numpy as np

            def f(a):
                return np.zeros(3, dtype=np.float64)
        """)
        assert lint_source(src, rules=[AccumulatorDtypeLiteralRule()]) == []


class TestLockAcrossAwait:
    def test_flags_await_under_lock(self):
        src = dedent("""\
            import asyncio

            class S:
                async def f(self):
                    with self._lock:
                        await asyncio.sleep(0)
        """)
        findings = lint_source(src, rules=[LockAcrossAwaitRule()])
        assert len(findings) == 1

    def test_flags_run_in_executor_under_lock(self):
        src = dedent("""\
            class S:
                async def f(self, loop, fn):
                    with self._lock:
                        return await loop.run_in_executor(None, fn)
        """)
        assert len(lint_source(src, rules=[LockAcrossAwaitRule()])) >= 1

    def test_flags_blocking_acquire_in_async_def(self):
        src = dedent("""\
            class S:
                async def f(self):
                    self._lock.acquire()

                async def g(self):
                    self._lock.acquire(blocking=False)
        """)
        findings = lint_source(src, rules=[LockAcrossAwaitRule()])
        assert [f.line for f in findings] == [3]  # non-blocking probe allowed

    def test_lock_without_await_is_fine(self):
        src = dedent("""\
            class S:
                async def f(self):
                    with self._lock:
                        self.x = 1
                    await self.other()
        """)
        assert lint_source(src, rules=[LockAcrossAwaitRule()]) == []


class TestUnlockedSharedState:
    def test_flags_mutation_outside_lock(self):
        src = dedent("""\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1
        """)
        findings = lint_source(src, rules=[UnlockedSharedStateRule()])
        assert [f.line for f in findings] == [9]  # __init__ is exempt

    def test_mutation_under_lock_is_fine(self):
        src = dedent("""\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
        """)
        assert lint_source(src, rules=[UnlockedSharedStateRule()]) == []

    def test_locked_suffix_methods_are_exempt(self):
        src = dedent("""\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def _bump_locked(self):
                    self.count += 1
        """)
        assert lint_source(src, rules=[UnlockedSharedStateRule()]) == []

    def test_lockless_class_is_not_checked(self):
        src = dedent("""\
            class S:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """)
        assert lint_source(src, rules=[UnlockedSharedStateRule()]) == []


class TestMutableDefaultArg:
    def test_flags_literal_and_constructor_defaults(self):
        src = dedent("""\
            def f(x=[]):
                return x

            def g(y=dict()):
                return y
        """)
        findings = lint_source(src, rules=[MutableDefaultArgRule()])
        assert len(findings) == 2

    def test_immutable_defaults_are_fine(self):
        src = "def f(x=(), y=None, z=0, w='s'):\n    return x, y, z, w\n"
        assert lint_source(src, rules=[MutableDefaultArgRule()]) == []


class TestWallClockInServe:
    SERVE_PATH = "src/repro/serve/example.py"

    def test_flags_time_time_under_serve(self):
        src = dedent("""\
            import time

            def latency():
                return time.time()
        """)
        findings = lint_source(src, path=self.SERVE_PATH,
                               rules=[WallClockInServeRule()])
        assert [f.line for f in findings] == [4]

    def test_flags_bare_time_and_datetime_now(self):
        src = dedent("""\
            from time import time
            from datetime import datetime
            import datetime as dt

            def stamp():
                return time(), datetime.now(), dt.datetime.utcnow()
        """)
        findings = lint_source(src, path="src/repro/telemetry/example.py",
                               rules=[WallClockInServeRule()])
        assert len(findings) == 3

    def test_monotonic_clocks_are_fine(self):
        src = dedent("""\
            import time

            def latency():
                return time.perf_counter(), time.perf_counter_ns(), time.monotonic()
        """)
        assert lint_source(src, path=self.SERVE_PATH,
                           rules=[WallClockInServeRule()]) == []

    def test_other_packages_are_out_of_jurisdiction(self):
        src = "import time\n\nstamp = time.time()\n"
        assert lint_source(src, path="scripts/bench.py",
                           rules=[WallClockInServeRule()]) == []
        assert lint_source(src, path="src/repro/core/mpu.py",
                           rules=[WallClockInServeRule()]) == []

    def test_aware_datetime_now_still_flagged_but_bare_name_time_is_not(self):
        # `time` as a variable (not `from time import time`) must not trip.
        src = dedent("""\
            def f(time):
                return time()
        """)
        assert lint_source(src, path=self.SERVE_PATH,
                           rules=[WallClockInServeRule()]) == []


class TestRepoLintState:
    """Pin the repo's own lint state so regressions fail loudly."""

    def test_src_tree_has_no_live_findings(self):
        findings = lint_paths([SRC])
        assert live(findings) == [], "\n".join(str(f) for f in live(findings))

    def test_deliberate_suppressions_are_pinned(self):
        """The audited `# repro: noqa` justifications, by file and rule.

        If this test fails after adding a suppression, extend the table —
        every entry must carry a written justification at the marker site.
        """
        findings = lint_paths([SRC])
        suppressed = sorted((Path(f.path).name, f.rule)
                            for f in findings if f.suppressed)
        assert suppressed == [
            ("mpu.py", "reassociating-reduction"),
            ("mpu.py", "reassociating-reduction"),
            # The offset group-sum (shared with the interpreter) and the
            # relaxed tier's opt-in dense contraction.
            ("program.py", "reassociating-reduction"),
            ("program.py", "reassociating-reduction"),
            ("workers.py", "unlocked-shared-state"),
        ]

    def test_workers_close_suppression_is_justified_in_source(self):
        source = (SRC / "repro" / "serve" / "workers.py").read_text()
        (finding,) = [f for f in lint_paths([SRC / "repro" / "serve"])
                      if f.suppressed]
        assert finding.rule == "unlocked-shared-state"
        marker_line = source.splitlines()[finding.line - 1]
        assert "repro: noqa unlocked-shared-state" in marker_line

    def test_default_rules_cover_the_contracted_checks(self):
        names = {r.name for r in default_rules()}
        assert names == {
            "reassociating-reduction",
            "accumulator-dtype-literal",
            "lock-across-await",
            "unlocked-shared-state",
            "mutable-default-argument",
            "wall-clock-in-serve",
        }

    def test_bit_exact_modules_are_marked(self):
        """The numerical core must stay inside the bit-exact contract."""
        import ast

        for mod in ("core/mpu.py", "core/lut.py", "core/program.py"):
            source = (SRC / "repro" / mod).read_text()
            lines = tuple(source.splitlines())
            covered = bit_exact_lines(ast.parse(source), lines)
            assert covered == set(range(1, len(lines) + 1)), \
                f"{mod} lost its module-level bit-exact marker"
