"""Mutation tests for the execution-free verifiers (repro.analysis.verify).

Each test corrupts one structural aspect of a sound ``CompiledProgram``
(or plan / shard partition) and asserts the verifier rejects it with the
*specific* invariant named — a verifier that fails with the wrong
invariant is as suspect as one that does not fail at all.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    PlanInvariantError,
    ProgramInvariantError,
    verify_plan,
    verify_program,
    verify_shard_programs,
)
from repro.core.mpu import MatrixProcessingUnit, MPUConfig
from repro.core.program import compile_plan
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
from repro.serve.sharding import shard_plan

CFG = MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4)


def _fused_instructions(program):
    """The fused tier's exact replay order for a program's dimensions."""
    ops = [("luts",)]
    ops += [("plane", p) for p in range(len(program.passes))]
    ops += [("scale", s, p) for s in range(program.num_segments)
            for p in range(len(program.passes))]
    ops += [("offset", k) for k in range(len(program.offset_slices))]
    return tuple(ops)


def build(m=24, n=40, bits=3, group_size=16, config=CFG, mixed=False, seed=7):
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((m, n))
    if mixed:
        per_row = rng.integers(1, bits + 1, size=m)
        bcq = quantize_bcq_mixed(weight, per_row,
                                 BCQConfig(bits=bits, group_size=group_size))
    else:
        bcq = quantize_bcq(weight, BCQConfig(bits=bits, group_size=group_size))
    plan = MatrixProcessingUnit(config).plan(bcq)
    return plan, bcq, compile_plan(plan, bcq, config), config


@pytest.fixture(scope="module")
def uniform():
    return build()


@pytest.fixture(scope="module")
def mixed():
    return build(mixed=True)


@pytest.fixture(scope="module")
def ragged():
    # group_size=7 against µ=2 leaves segments with fewer LUT groups than
    # the widest one, so the program has fully padded sentinel slots.
    cfg = MPUConfig(pe_rows=8, pe_cols=1, mu=2, k=8)
    return build(m=16, n=30, bits=3, group_size=7, config=cfg)


@pytest.fixture(scope="module")
def blocked(uniform):
    # gather_budget=1 forces one segment per block, so every plane streams
    # through multiple plane_block instructions.
    plan, bcq, _, _ = uniform
    cfg = MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4, gather_budget=1)
    return plan, bcq, compile_plan(plan, bcq, cfg, tier="blocked"), cfg


@pytest.fixture(scope="module")
def relaxed(uniform):
    plan, bcq, _, _ = uniform
    program = compile_plan(plan, bcq, CFG, tier="relaxed",
                           allow_reassociation=True)
    return plan, bcq, program, CFG


def corrupt(program, **replacements):
    return dataclasses.replace(program, **replacements)


def expect(invariant, fn, *args, **kwargs):
    with pytest.raises(ProgramInvariantError) as err:
        fn(*args, **kwargs)
    assert err.value.invariant == invariant, str(err.value)
    assert str(err.value).startswith(f"[{invariant}]")


class TestSoundArtifactsPass:
    def test_uniform_mixed_and_ragged_programs_verify(self, uniform, mixed,
                                                      ragged):
        for plan, _, program, cfg in (uniform, mixed, ragged):
            verify_plan(plan)
            verify_program(program)
            verify_program(program, plan=plan, config=cfg)

    def test_shard_partition_verifies(self, uniform):
        plan, bcq, _, _ = uniform
        shards = shard_plan(plan, 2, axis="segments")
        programs = [compile_plan(plan, bcq, CFG, shard=s) for s in shards]
        verify_shard_programs(plan, shards, programs, CFG)


class TestProgramMutations:
    """Distinct corruption classes, each rejected by its own invariant."""

    def test_geometry_wrong_lut_cols_shape(self, uniform):
        _, _, program, _ = uniform
        bad = corrupt(program, lut_cols=program.lut_cols[:-1])
        expect("program-geometry", verify_program, bad)

    def test_gather_index_out_of_bounds(self, uniform):
        _, _, program, _ = uniform
        cols = program.lut_cols.copy()
        cols[0, 0] = program.n + 5
        expect("lut-cols-bounds", verify_program,
               corrupt(program, lut_cols=cols))

    def test_sentinel_not_a_suffix(self, ragged):
        _, _, program, _ = ragged
        cols = program.lut_cols.copy()
        # Punch a sentinel hole into the middle of a real column run.
        block = cols[:program.slots_per_segment].reshape(-1)
        assert (block < program.n).sum() > 2
        block[1] = program.n
        expect("lut-cols-layout", verify_program,
               corrupt(program, lut_cols=cols))

    def test_non_contiguous_column_run(self, uniform):
        _, _, program, _ = uniform
        cols = program.lut_cols.copy()
        flat = cols[:program.slots_per_segment].reshape(-1)
        flat[0], flat[1] = flat[1], flat[0]  # break ascending order
        expect("lut-cols-layout", verify_program,
               corrupt(program, lut_cols=cols))

    def test_padded_slot_with_nonzero_key(self, ragged):
        _, _, program, _ = ragged
        padded = np.flatnonzero(
            (program.lut_cols == program.n).all(axis=1))
        assert padded.size, "fixture must produce padded sentinel slots"
        pp = program.passes[0]
        keys = pp.keys.copy()
        keys[padded[0], :] = 1  # would read a non-zero LUT row
        passes = (dataclasses.replace(pp, keys=keys),) + program.passes[1:]
        expect("sentinel-zero-keys", verify_program,
               corrupt(program, passes=passes))

    def test_rac_key_out_of_range(self, uniform):
        _, _, program, _ = uniform
        pp = program.passes[0]
        keys = pp.keys.copy()
        keys[0, 0] = 1 << program.mu
        passes = (dataclasses.replace(pp, keys=keys),) + program.passes[1:]
        expect("keys-range", verify_program, corrupt(program, passes=passes))

    def test_duplicate_scatter_row(self, mixed):
        _, _, program, _ = mixed
        masked = [i for i, pp in enumerate(program.passes)
                  if pp.rows is not None and pp.rows.size > 1]
        assert masked, "mixed-precision fixture must have masked planes"
        i = masked[0]
        rows = program.passes[i].rows.copy()
        rows[1] = rows[0]  # same output row accumulated twice
        passes = list(program.passes)
        passes[i] = dataclasses.replace(passes[i], rows=rows)
        expect("scatter-rows", verify_program,
               corrupt(program, passes=tuple(passes)))

    def test_scatter_row_out_of_bounds(self, mixed):
        _, _, program, _ = mixed
        i = next(i for i, pp in enumerate(program.passes)
                 if pp.rows is not None)
        rows = program.passes[i].rows.copy()
        rows[-1] = program.m  # one past the last output row
        passes = list(program.passes)
        passes[i] = dataclasses.replace(passes[i], rows=rows)
        expect("scatter-rows", verify_program,
               corrupt(program, passes=tuple(passes)))

    def test_plane_rows_not_nested(self, mixed):
        _, _, program, _ = mixed
        # Swapping a narrower plane ahead of a wider one makes the later
        # plane activate rows its predecessor retired.
        sizes = [program.m if pp.rows is None else pp.rows.size
                 for pp in program.passes]
        i = next(i for i in range(1, len(sizes)) if sizes[i] < sizes[i - 1])
        passes = list(program.passes)
        passes[i - 1], passes[i] = passes[i], passes[i - 1]
        expect("plane-rows-nested", verify_program,
               corrupt(program, passes=tuple(passes)))

    def test_scales_shape_mismatch(self, uniform):
        _, _, program, _ = uniform
        pp = program.passes[0]
        passes = (dataclasses.replace(pp, scales=pp.scales[:, :-1]),) \
            + program.passes[1:]
        expect("scales-shape", verify_program, corrupt(program, passes=passes))

    def test_overlapping_offset_slices(self, uniform):
        _, _, program, _ = uniform
        assert len(program.offset_slices) >= 2
        slices = list(program.offset_slices)
        start, stop = slices[1]
        slices[1] = (start - 1, stop)  # overlaps the previous span
        expect("offset-slices", verify_program,
               corrupt(program, offset_slices=tuple(slices)))

    def test_instruction_replay_order_broken(self, uniform):
        _, _, program, _ = uniform
        instructions = list(program.instructions)
        instructions[0], instructions[1] = instructions[1], instructions[0]
        expect("instruction-order", verify_program,
               corrupt(program, instructions=tuple(instructions)))

    def test_dropped_instruction(self, uniform):
        _, _, program, _ = uniform
        expect("instruction-order", verify_program,
               corrupt(program, instructions=program.instructions[:-1]))

    def test_negative_affine_slope(self, uniform):
        _, _, program, _ = uniform
        slope = list(program.stats_slope)
        slope[0] = -1
        expect("affine-stats", verify_program,
               corrupt(program, stats_slope=tuple(slope)))

    def test_baked_stats_disagree_with_plan(self, uniform):
        plan, _, program, _ = uniform
        base = list(program.stats_base)
        base[0] += 1  # off-by-one intercept: wrong at every batch
        expect("affine-stats", verify_program,
               corrupt(program, stats_base=tuple(base)), plan=plan, config=CFG)

    def test_dropped_plane_pass_vs_plan(self, uniform):
        plan, _, program, _ = uniform
        bad = corrupt(program, passes=program.passes[:-1])
        # Keep the self-contained checks clean so the plan comparison is
        # what fires: rebake the instruction list for the truncated passes.
        bad = corrupt(bad, instructions=_fused_instructions(bad))
        expect("plane-mask-active-rows", verify_program, bad,
               plan=plan, config=CFG)

    def test_shifted_columns_vs_plan(self, uniform):
        plan, _, program, _ = uniform
        cols = program.lut_cols.copy()
        width = plan.segments[0].width
        # Segment 0 gathers [1, width+1) instead of [0, width): still a
        # contiguous in-bounds run, but not the plan's columns.
        flat = cols[:program.slots_per_segment].reshape(-1)
        flat[flat < program.n] = np.arange(1, width + 1)
        expect("segment-cols-match", verify_program,
               corrupt(program, lut_cols=cols), plan=plan, config=CFG)


class TestPlanMutations:
    def test_row_band_gap(self, uniform):
        plan, _, _, _ = uniform
        bands = list(plan.row_bands)
        bands[0] = dataclasses.replace(
            bands[0], row_slice=slice(1, bands[0].row_slice.stop))
        with pytest.raises(PlanInvariantError) as err:
            verify_plan(dataclasses.replace(plan, row_bands=tuple(bands)))
        assert err.value.invariant == "row-band-partition"

    def test_active_rows_growing(self, uniform):
        plan, _, _, _ = uniform
        bands = list(plan.row_bands)
        active = list(bands[0].active_rows_per_plane)
        active[-1] = active[0] + 1
        bands[0] = dataclasses.replace(
            bands[0], active_rows_per_plane=tuple(active))
        with pytest.raises(PlanInvariantError) as err:
            verify_plan(dataclasses.replace(plan, row_bands=tuple(bands)))
        assert err.value.invariant == "active-rows-monotone"

    def test_segment_crossing_scale_group(self, uniform):
        plan, _, _, _ = uniform
        segs = list(plan.segments)
        first = segs[0]
        merged = dataclasses.replace(
            first, col_slice=slice(first.col_slice.start,
                                   segs[1].col_slice.stop))
        with pytest.raises(PlanInvariantError) as err:
            verify_plan(dataclasses.replace(
                plan, segments=tuple([merged] + segs[2:])))
        assert err.value.invariant in ("segment-partition",
                                       "segment-scale-group")


class TestShardMutations:
    def test_missing_segment(self, uniform):
        plan, _, _, _ = uniform
        n_seg = len(plan.segments)
        shards = [plan.shard_segments(range(n_seg - 1), 0, 2),
                  plan.shard_segments([], 1, 2)]
        expect("shard-segment-partition", verify_shard_programs, plan, shards)

    def test_duplicated_segment(self, uniform):
        plan, _, _, _ = uniform
        n_seg = len(plan.segments)
        shards = [plan.shard_segments(range(n_seg), 0, 2),
                  plan.shard_segments([0], 1, 2)]
        expect("shard-segment-partition", verify_shard_programs, plan, shards)

    def test_offset_ownership_not_a_partition(self, uniform):
        plan, _, _, _ = uniform
        shards = list(shard_plan(plan, 2, axis="segments"))
        # Both shards claim shard 0's groups: double-applied offsets.
        shards[1] = dataclasses.replace(
            shards[1], owned_scale_groups=shards[0].owned_scale_groups)
        expect("shard-offset-ownership", verify_shard_programs, plan, shards)

    def test_program_swapped_between_shards(self, uniform):
        plan, bcq, _, _ = uniform
        shards = shard_plan(plan, 2, axis="segments")
        programs = [compile_plan(plan, bcq, CFG, shard=s) for s in shards]
        with pytest.raises(ProgramInvariantError):
            verify_shard_programs(plan, shards, programs[::-1], CFG)


class TestTierMutations:
    """The tier invariants: ``program-tier``, ``plane-block-coverage``,
    and the tier-aware ``instruction-order``."""

    def test_sound_blocked_and_relaxed_verify(self, uniform, blocked,
                                              relaxed):
        plan, _, _, _ = uniform
        for _, _, program, cfg in (blocked, relaxed):
            verify_program(program)
            verify_program(program, plan=plan, config=cfg)

    def test_unknown_tier(self, uniform):
        _, _, program, _ = uniform
        expect("program-tier", verify_program, corrupt(program, tier="turbo"))

    def test_zero_gather_budget(self, uniform):
        _, _, program, _ = uniform
        expect("program-tier", verify_program,
               corrupt(program, gather_budget=0))

    def test_dense_matrix_on_bitwise_tier(self, uniform):
        _, _, program, _ = uniform
        dense = np.zeros((program.m, program.n))
        expect("program-tier", verify_program, corrupt(program, dense=dense))

    def test_relaxed_without_dense_matrix(self, relaxed):
        _, _, program, _ = relaxed
        expect("program-tier", verify_program, corrupt(program, dense=None))

    def test_relaxed_dense_wrong_dtype(self, relaxed):
        _, _, program, _ = relaxed
        expect("program-tier", verify_program,
               corrupt(program, dense=program.dense.astype(np.float32)))

    def test_blocked_program_relabelled_fused(self, blocked):
        # The body holds plane_block streams, not the fused ("plane", p)
        # passes the relabelled tier promises.
        _, _, program, _ = blocked
        expect("instruction-order", verify_program,
               corrupt(program, tier="fused"))

    def test_dropped_plane_block(self, blocked):
        # The range walk is pinned by plane 0's blocks; dropping one leaves
        # a segment whose partial is never produced.
        _, _, program, _ = blocked
        blocks = [op for op in program.instructions
                  if op[:2] == ("plane_block", 0)]
        assert len(blocks) > 1, "fixture must stream multiple blocks"
        instructions = list(program.instructions)
        instructions.remove(blocks[-1])
        expect("plane-block-coverage", verify_program,
               corrupt(program, instructions=tuple(instructions)))

    def test_gapped_plane_block(self, blocked):
        _, _, program, _ = blocked
        blocks = [op for op in program.instructions
                  if op[:2] == ("plane_block", 0)]
        assert len(blocks) > 2, "fixture must stream multiple blocks"
        instructions = list(program.instructions)
        instructions.remove(blocks[1])  # hole inside the segment walk
        expect("plane-block-coverage", verify_program,
               corrupt(program, instructions=tuple(instructions)))

    def test_dropped_secondary_plane_block(self, blocked):
        # A missing non-zero-plane block leaves plane 0's walk intact, so
        # it trips the exact interleaved-order pin instead.
        _, _, program, _ = blocked
        blocks = [op for op in program.instructions
                  if op[0] == "plane_block" and op[1] > 0]
        assert blocks, "fixture must hold multiple planes"
        instructions = list(program.instructions)
        instructions.remove(blocks[0])
        expect("instruction-order", verify_program,
               corrupt(program, instructions=tuple(instructions)))

    def test_relaxed_wrong_instruction(self, relaxed):
        _, _, program, _ = relaxed
        expect("instruction-order", verify_program,
               corrupt(program, instructions=(("luts",),)))


class TestReproVerifyKnob:
    def test_compile_verifies_under_env_knob(self, monkeypatch, uniform):
        plan, bcq, _, _ = uniform
        monkeypatch.setenv("REPRO_VERIFY", "1")
        program = compile_plan(plan, bcq, CFG)  # must self-verify cleanly
        verify_program(program, plan=plan, config=CFG)
