"""Tests for round-to-nearest uniform quantization."""

import numpy as np
import pytest

from repro.quant.rtn import RTNConfig, quantize_rtn


class TestRTNConfig:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            RTNConfig(bits=0)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            RTNConfig(granularity="row")

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            RTNConfig(granularity="group", group_size=0)


class TestQuantizeRTN:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_codes_within_range(self, small_weight, bits):
        qt = quantize_rtn(small_weight, RTNConfig(bits=bits))
        assert qt.codes.min() >= 0
        assert qt.codes.max() <= (1 << bits) - 1

    @pytest.mark.parametrize("granularity", ["tensor", "channel", "group"])
    def test_error_bounded_by_half_step(self, small_weight, granularity):
        config = RTNConfig(bits=4, granularity=granularity, group_size=8)
        qt = quantize_rtn(small_weight, config)
        err = np.abs(qt.dequantize() - small_weight)
        # Each element must land within half a quantization step of its scope.
        max_scale = np.max(qt.scales)
        assert np.max(err) <= max_scale / 2 + 1e-12

    def test_more_bits_reduce_error(self, small_weight):
        errs = []
        for bits in (2, 4, 8):
            qt = quantize_rtn(small_weight, RTNConfig(bits=bits))
            errs.append(np.linalg.norm(qt.dequantize() - small_weight))
        assert errs[0] > errs[1] > errs[2]

    def test_channel_beats_tensor_granularity(self, rng):
        # Rows with very different magnitude ranges favour per-channel scales.
        weight = rng.standard_normal((8, 64)) * np.logspace(-2, 1, 8)[:, None]
        per_tensor = quantize_rtn(weight, RTNConfig(bits=4, granularity="tensor"))
        per_channel = quantize_rtn(weight, RTNConfig(bits=4, granularity="channel"))
        err_tensor = np.linalg.norm(per_tensor.dequantize() - weight)
        err_channel = np.linalg.norm(per_channel.dequantize() - weight)
        assert err_channel < err_tensor

    def test_group_beats_channel_for_columnwise_scale_variation(self, rng):
        weight = rng.standard_normal((4, 128)) * np.repeat(np.logspace(-2, 1, 8), 16)[None, :]
        per_channel = quantize_rtn(weight, RTNConfig(bits=3, granularity="channel"))
        per_group = quantize_rtn(weight, RTNConfig(bits=3, granularity="group", group_size=16))
        assert (np.linalg.norm(per_group.dequantize() - weight)
                < np.linalg.norm(per_channel.dequantize() - weight))

    def test_symmetric_grid_has_centered_zero_point(self, small_weight):
        qt = quantize_rtn(small_weight, RTNConfig(bits=4, symmetric=True))
        np.testing.assert_allclose(qt.zero_points, ((1 << 4) - 1) / 2.0)

    def test_constant_block_is_exact(self):
        weight = np.full((3, 7), 0.25)
        qt = quantize_rtn(weight, RTNConfig(bits=4))
        np.testing.assert_allclose(qt.dequantize(), weight)

    def test_min_and_max_are_exactly_representable_asymmetric(self, small_weight):
        qt = quantize_rtn(small_weight, RTNConfig(bits=4, granularity="channel"))
        deq = qt.dequantize()
        for r in range(small_weight.shape[0]):
            assert deq[r].min() == pytest.approx(small_weight[r].min(), abs=1e-9)
            assert deq[r].max() == pytest.approx(small_weight[r].max(), abs=1e-9)

    def test_storage_bits_accounts_for_codes_and_scales(self, small_weight):
        qt = quantize_rtn(small_weight, RTNConfig(bits=4, granularity="channel"))
        expected = small_weight.size * 4 + 2 * small_weight.shape[0] * 16
        assert qt.storage_bits() == expected

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_rtn(np.zeros(5))
