"""Tests for the software floating-point format models."""

import numpy as np
import pytest

from repro.numerics.floats import (
    BF16,
    FP16,
    FP32,
    cast_to_format,
    compose,
    decompose,
    get_format,
    ulp,
)


class TestFormatDescriptors:
    def test_fp16_fields(self):
        assert FP16.exponent_bits == 5
        assert FP16.mantissa_bits == 10
        assert FP16.total_bits == 16
        assert FP16.bias == 15

    def test_bf16_fields(self):
        assert BF16.exponent_bits == 8
        assert BF16.mantissa_bits == 7
        assert BF16.total_bits == 16

    def test_fp32_fields(self):
        assert FP32.exponent_bits == 8
        assert FP32.mantissa_bits == 23
        assert FP32.total_bits == 32

    def test_max_value_fp16(self):
        assert FP16.max_value == pytest.approx(65504.0)

    def test_get_format_by_name(self):
        assert get_format("fp16") is FP16
        assert get_format("BF16") is BF16
        assert get_format(FP32) is FP32

    def test_get_format_unknown(self):
        with pytest.raises(ValueError):
            get_format("fp8")


class TestCasting:
    def test_fp16_cast_matches_numpy(self, rng):
        values = rng.standard_normal(100)
        assert np.array_equal(cast_to_format(values, "fp16"),
                              values.astype(np.float16).astype(np.float64))

    def test_fp32_cast_matches_numpy(self, rng):
        values = rng.standard_normal(100)
        assert np.array_equal(cast_to_format(values, "fp32"),
                              values.astype(np.float32).astype(np.float64))

    def test_bf16_cast_preserves_exactly_representable(self):
        # 1.5 has a short mantissa and must be exact in bfloat16.
        assert cast_to_format(np.array([1.5, -2.0, 0.0]), "bf16").tolist() == [1.5, -2.0, 0.0]

    def test_bf16_cast_rounds_mantissa(self):
        value = np.float32(1.0 + 2 ** -9)  # below bf16 resolution at 1.0
        cast = cast_to_format(np.array([value]), "bf16")[0]
        assert cast in (1.0, 1.0 + 2 ** -7)

    def test_bf16_error_bounded_by_relative_2e_minus_8(self, rng):
        values = rng.standard_normal(1000)
        cast = cast_to_format(values, "bf16")
        rel = np.abs(cast - values) / np.maximum(np.abs(values), 1e-30)
        assert np.max(rel) <= 2 ** -8 + 1e-12


class TestDecomposeCompose:
    @pytest.mark.parametrize("fmt", ["fp16", "bf16", "fp32"])
    def test_roundtrip(self, fmt, rng):
        values = rng.standard_normal(200)
        cast = cast_to_format(values, fmt)
        sign, exponent, mantissa = decompose(cast, fmt)
        rebuilt = compose(sign, exponent, mantissa, fmt)
        np.testing.assert_allclose(rebuilt, cast, rtol=0, atol=0)

    def test_zero_decomposes_to_zero_mantissa(self):
        sign, exponent, mantissa = decompose(np.array([0.0]), "fp16")
        assert mantissa[0] == 0

    def test_mantissa_includes_hidden_bit(self):
        _, _, mantissa = decompose(np.array([1.0]), "fp16")
        assert mantissa[0] == 1 << 10

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            decompose(np.array([np.nan]), "fp16")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            decompose(np.array([np.inf]), "fp32")

    def test_sign_of_negative_values(self):
        sign, _, _ = decompose(np.array([-3.0, 2.0]), "fp16")
        assert sign.tolist() == [-1, 1]


class TestUlp:
    def test_ulp_at_one_fp16(self):
        assert ulp(1.0, "fp16") == pytest.approx(2 ** -10)

    def test_ulp_scales_with_exponent(self):
        assert ulp(4.0, "fp16") == pytest.approx(4 * ulp(1.0, "fp16"))

    def test_ulp_of_zero_is_smallest_step(self):
        assert ulp(0.0, "fp16") == pytest.approx(2.0 ** (FP16.min_exponent - FP16.mantissa_bits))
