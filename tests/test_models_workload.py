"""Tests for the OPT workload definitions, tokenizer, and synthetic corpus."""

import numpy as np
import pytest

from repro.models.dataset import SyntheticCorpusConfig, batchify, generate_corpus, split_corpus
from repro.models.opt import OPT_CONFIGS, decoder_gemm_shapes, opt_config, total_weight_count
from repro.models.tokenizer import WordTokenizer


class TestOPTConfigs:
    def test_family_members_present(self):
        for name in ("opt-125m", "opt-350m", "opt-1.3b", "opt-2.7b", "opt-6.7b", "opt-13b", "opt-30b"):
            assert name in OPT_CONFIGS

    def test_lookup_is_case_insensitive(self):
        assert opt_config("OPT-6.7B").hidden_size == 4096
        assert opt_config("6.7b").num_layers == 32

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            opt_config("opt-66b")

    def test_parameter_counts_roughly_match_names(self):
        assert OPT_CONFIGS["opt-125m"].parameters == pytest.approx(125e6, rel=0.3)
        assert OPT_CONFIGS["opt-6.7b"].parameters == pytest.approx(6.7e9, rel=0.15)
        assert OPT_CONFIGS["opt-30b"].parameters == pytest.approx(30e9, rel=0.15)

    def test_decoder_gemm_shapes_count(self):
        shapes = decoder_gemm_shapes("opt-1.3b", batch=4)
        assert len(shapes) == 24 * 6
        assert all(s.batch == 4 for s in shapes)

    def test_decoder_gemm_shapes_sizes(self):
        shapes = decoder_gemm_shapes("opt-125m", batch=1)
        d, f = 768, 3072
        per_layer = shapes[:6]
        assert [(s.m, s.n) for s in per_layer] == [(d, d)] * 4 + [(f, d), (d, f)]

    def test_lm_head_inclusion(self):
        with_head = decoder_gemm_shapes("opt-125m", include_lm_head=True)
        without = decoder_gemm_shapes("opt-125m", include_lm_head=False)
        assert len(with_head) == len(without) + 1

    def test_total_weight_count_matches_shapes(self):
        count = total_weight_count("opt-125m")
        assert count == 12 * (4 * 768 * 768 + 2 * 768 * 3072)

    def test_larger_models_have_more_weights(self):
        assert total_weight_count("opt-30b") > total_weight_count("opt-6.7b")

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            decoder_gemm_shapes("opt-125m", batch=0)


class TestTokenizer:
    def test_fit_and_roundtrip(self):
        tok = WordTokenizer(max_vocab=64).fit("the cat sat on the mat the end")
        ids = tok.encode("the cat sat")
        assert tok.decode(ids) == "the cat sat"

    def test_unknown_words_map_to_unk(self):
        tok = WordTokenizer(max_vocab=8).fit("a b c d")
        ids = tok.encode("zebra")
        assert ids == [tok.unk_id]

    def test_vocab_capped(self):
        text = " ".join(f"word{i}" for i in range(1000))
        tok = WordTokenizer(max_vocab=100).fit(text)
        assert tok.vocab_size == 100

    def test_most_frequent_words_kept(self):
        tok = WordTokenizer(max_vocab=4).fit("x x x y y z rare")
        assert "x" in tok.word_to_id and "y" in tok.word_to_id

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WordTokenizer().encode("hello")

    def test_decode_invalid_id_raises(self):
        tok = WordTokenizer(max_vocab=8).fit("a b")
        with pytest.raises(ValueError):
            tok.decode([999])


class TestSyntheticCorpus:
    def test_deterministic_for_fixed_seed(self):
        a = generate_corpus(SyntheticCorpusConfig(num_paragraphs=10, seed=3))
        b = generate_corpus(SyntheticCorpusConfig(num_paragraphs=10, seed=3))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_corpus(SyntheticCorpusConfig(num_paragraphs=10, seed=3))
        b = generate_corpus(SyntheticCorpusConfig(num_paragraphs=10, seed=4))
        assert a != b

    def test_size_scales_with_paragraphs(self):
        small = generate_corpus(SyntheticCorpusConfig(num_paragraphs=5))
        large = generate_corpus(SyntheticCorpusConfig(num_paragraphs=50))
        assert len(large.split()) > len(small.split())

    def test_corpus_vocabulary_is_learnable_size(self):
        corpus = generate_corpus(SyntheticCorpusConfig(num_paragraphs=100))
        vocab = set(corpus.split())
        assert 50 < len(vocab) < 400

    def test_split_corpus(self):
        train, valid = split_corpus(list(range(100)), train_fraction=0.8)
        assert len(train) == 80 and len(valid) == 20

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_corpus(list(range(10)), train_fraction=1.5)

    def test_batchify_shapes_and_shift(self):
        ids = np.arange(200)
        batches = batchify(ids, batch_size=3, seq_len=10)
        inputs, targets = batches[0]
        assert inputs.shape == (3, 10) and targets.shape == (3, 10)
        np.testing.assert_array_equal(targets[:, :-1], inputs[:, 1:])

    def test_batchify_too_short_raises(self):
        with pytest.raises(ValueError):
            batchify(np.arange(5), batch_size=1, seq_len=10)
