"""Tests for the mantissa pre-alignment transform."""

import numpy as np
import pytest

from repro.numerics.floats import cast_to_format, get_format
from repro.numerics.prealign import aligned_dot, prealign, prealign_blocks, reconstruct


class TestPrealign:
    def test_reconstruction_error_bounded_by_alignment_loss(self, rng):
        values = cast_to_format(rng.standard_normal(64), "fp16")
        block = prealign(values, fmt="fp16")
        # Alignment can only lose bits below the shared exponent; the error is
        # bounded by one aligned LSB per element.
        np.testing.assert_allclose(reconstruct(block), values, atol=block.scale)

    def test_exact_for_equal_exponents(self):
        values = np.array([1.5, -1.25, 1.75, -1.0])
        block = prealign(values, fmt="fp16")
        np.testing.assert_array_equal(reconstruct(block), values)

    def test_shared_exponent_is_block_maximum(self):
        values = np.array([0.5, 8.0, -0.25])
        block = prealign(values, fmt="fp16")
        assert block.shared_exponent == 3  # 8.0 = 1.0 * 2^3

    def test_small_values_may_flush_to_zero(self):
        values = np.array([1.0, 2.0 ** -30])
        block = prealign(values, fmt="fp16")
        assert block.mantissas[1] == 0

    def test_zero_block(self):
        block = prealign(np.zeros(4), fmt="fp16")
        assert np.all(block.mantissas == 0)
        np.testing.assert_array_equal(reconstruct(block), np.zeros(4))

    def test_extra_bits_reduce_error(self, rng):
        values = cast_to_format(rng.standard_normal(128) * rng.uniform(0.01, 10, 128), "fp16")
        coarse = prealign(values, fmt="fp16", extra_bits=0)
        fine = prealign(values, fmt="fp16", extra_bits=8)
        err_coarse = np.max(np.abs(reconstruct(coarse) - values))
        err_fine = np.max(np.abs(reconstruct(fine) - values))
        assert err_fine <= err_coarse

    def test_mantissas_fit_datapath_width(self, rng):
        fmt = get_format("fp16")
        values = cast_to_format(rng.standard_normal(256), "fp16")
        block = prealign(values, fmt="fp16")
        # Aligned mantissas must fit in mantissa_bits + hidden bit (+ sign).
        assert np.max(np.abs(block.mantissas)) <= (1 << (fmt.mantissa_bits + 1))


class TestAlignedDot:
    def test_matches_reference_within_alignment_error(self, rng):
        x = cast_to_format(rng.standard_normal(64), "fp16")
        w = rng.integers(-8, 8, size=64)
        block = prealign(x, fmt="fp16")
        reference = float(np.dot(x, w))
        assert aligned_dot(block, w) == pytest.approx(reference, abs=64 * 8 * block.scale)

    def test_binary_weights(self, rng):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        w = np.array([1, -1, 1, -1])
        block = prealign(x, fmt="fp32")
        assert aligned_dot(block, w) == pytest.approx(-2.0, rel=1e-6)

    def test_rejects_non_integer_weights(self):
        block = prealign(np.array([1.0, 2.0]), fmt="fp16")
        with pytest.raises(ValueError):
            aligned_dot(block, np.array([0.5, 1.5]))


class TestPrealignMatrixRetirement:
    """prealign_matrix (a Python list of per-row blocks) was retired; its
    per-row semantics live on as prealign_blocks rows."""

    def test_prealign_matrix_is_gone(self):
        import repro.numerics.prealign as prealign_mod

        assert not hasattr(prealign_mod, "prealign_matrix")

    def test_one_block_per_row_via_blocks(self, rng):
        matrix = rng.standard_normal((6, 16))
        batched = prealign_blocks(matrix, fmt="fp16")
        assert batched.mantissas.shape == matrix.shape
        for k, row in enumerate(matrix):
            cast_row = cast_to_format(row, "fp16")
            real = batched.mantissas[k].astype(np.float64) * batched.scales[k]
            np.testing.assert_allclose(real, cast_row, atol=batched.scales[k])

    def test_column_blocks_via_transpose(self, rng):
        matrix = rng.standard_normal((4, 3))
        batched = prealign_blocks(np.ascontiguousarray(matrix.T), fmt="fp32")
        assert batched.mantissas.shape == (3, 4)
        for c in range(3):
            single = prealign(matrix[:, c], fmt="fp32")
            np.testing.assert_array_equal(batched.mantissas[c], single.mantissas)


class TestPrealignBlocks:
    def test_matches_per_row_prealign(self, rng):
        from repro.numerics.prealign import prealign_blocks

        blocks = rng.standard_normal((9, 24))
        blocks[3] = 0.0  # all-zero block
        batched = prealign_blocks(blocks, fmt="fp16")
        for k in range(blocks.shape[0]):
            single = prealign(blocks[k], fmt="fp16")
            np.testing.assert_array_equal(batched.mantissas[k], single.mantissas)
            assert int(batched.shared_exponents[k]) == single.shared_exponent
            assert batched.scales[k] == single.scale
        assert batched.frac_bits == single.frac_bits

    def test_extra_bits_guard_bits(self, rng):
        from repro.numerics.prealign import prealign_blocks

        blocks = rng.standard_normal((4, 16))
        batched = prealign_blocks(blocks, fmt="fp16", extra_bits=3)
        for k in range(4):
            single = prealign(blocks[k], fmt="fp16", extra_bits=3)
            np.testing.assert_array_equal(batched.mantissas[k], single.mantissas)

    def test_zero_width_blocks(self):
        from repro.numerics.prealign import prealign_blocks

        batched = prealign_blocks(np.zeros((3, 0)), fmt="fp16")
        assert batched.mantissas.shape == (3, 0)
        np.testing.assert_array_equal(batched.shared_exponents, np.zeros(3))

    def test_rejects_non_2d(self):
        from repro.numerics.prealign import prealign_blocks

        with pytest.raises(ValueError):
            prealign_blocks(np.zeros(5), fmt="fp16")


class TestPrealignGrouped:
    @pytest.mark.parametrize("n,group_size", [(16, 4), (17, 4), (5, 8), (12, 1)])
    def test_matches_per_block_prealign(self, rng, n, group_size):
        from repro.numerics.prealign import prealign_grouped

        x = rng.standard_normal((n, 3))
        grouped = prealign_grouped(x, group_size, fmt="fp16")
        n_groups = max((n + group_size - 1) // group_size, 1)
        assert grouped.scales.shape == (n_groups, 3)
        for b in range(x.shape[1]):
            for g in range(n_groups):
                sl = slice(g * group_size, min((g + 1) * group_size, n))
                single = prealign(x[sl, b], fmt="fp16")
                np.testing.assert_array_equal(grouped.mantissas[sl, b],
                                              single.mantissas)
                assert grouped.scales[g, b] == single.scale

    def test_empty_activation_matrix(self):
        from repro.numerics.prealign import prealign_grouped

        grouped = prealign_grouped(np.zeros((0, 4)), 8, fmt="fp16")
        assert grouped.mantissas.shape == (0, 4)
        grouped = prealign_grouped(np.zeros((6, 0)), 2, fmt="fp16")
        assert grouped.mantissas.shape == (6, 0)

    def test_rejects_bad_group_size(self):
        from repro.numerics.prealign import prealign_grouped

        with pytest.raises(ValueError):
            prealign_grouped(np.zeros((4, 2)), 0)
