"""Tests for OPTQ and ShiftAddLLM-style quantization."""

import numpy as np
import pytest

from repro.quant.calibration import gather_calibration_hessian
from repro.quant.optq import OPTQConfig, quantize_optq
from repro.quant.rtn import RTNConfig, quantize_rtn
from repro.quant.shiftadd import ShiftAddConfig, quantize_shiftadd
from repro.quant.bcq import BCQConfig, quantize_bcq


@pytest.fixture
def calibration(rng):
    return rng.standard_normal((64, 32))


def _output_error(weight, quantized, activations):
    return np.linalg.norm((weight - quantized.dequantize()) @ activations.T)


class TestCalibrationHessian:
    def test_shape_and_symmetry(self, calibration):
        h = gather_calibration_hessian(calibration)
        assert h.shape == (32, 32)
        np.testing.assert_allclose(h, h.T)

    def test_positive_definite(self, calibration):
        h = gather_calibration_hessian(calibration)
        assert np.all(np.linalg.eigvalsh(h) > 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gather_calibration_hessian(np.zeros((0, 4)))


class TestOPTQ:
    def test_codes_in_range(self, small_weight, calibration):
        qt = quantize_optq(small_weight, calibration, OPTQConfig(bits=3))
        assert qt.codes.min() >= 0 and qt.codes.max() <= 7

    def test_improves_output_error_over_rtn(self, rng):
        # Correlated calibration inputs are where OPTQ's compensation helps.
        weight = rng.standard_normal((32, 48)) * 0.1
        base = rng.standard_normal((256, 8))
        mix = rng.standard_normal((8, 48))
        activations = base @ mix + 0.05 * rng.standard_normal((256, 48))
        optq = quantize_optq(weight, activations, OPTQConfig(bits=3))
        rtn = quantize_rtn(weight, RTNConfig(bits=3, granularity="channel"))
        assert _output_error(weight, optq, activations) < _output_error(weight, rtn, activations)

    def test_block_size_does_not_change_result_much(self, small_weight, calibration):
        a = quantize_optq(small_weight, calibration, OPTQConfig(bits=4, block_size=8))
        b = quantize_optq(small_weight, calibration, OPTQConfig(bits=4, block_size=128))
        # Same grid, same compensation maths — output errors should be close.
        err_a = _output_error(small_weight, a, calibration)
        err_b = _output_error(small_weight, b, calibration)
        assert err_a == pytest.approx(err_b, rel=0.2)

    def test_shape_mismatch_raises(self, small_weight):
        with pytest.raises(ValueError):
            quantize_optq(small_weight, np.zeros((16, 7)), OPTQConfig(bits=4))


class TestShiftAdd:
    def test_returns_bcq_tensor_with_binary_planes(self, small_weight, calibration):
        qt = quantize_shiftadd(small_weight, calibration, ShiftAddConfig(bits=2))
        assert set(np.unique(qt.bitplanes)) <= {-1, 1}
        assert qt.bits == 2

    def test_without_calibration_matches_plain_bcq(self, small_weight):
        a = quantize_shiftadd(small_weight, None, ShiftAddConfig(bits=3, iterations=4))
        b = quantize_bcq(small_weight, BCQConfig(bits=3, iterations=4))
        np.testing.assert_allclose(a.dequantize(), b.dequantize())

    def test_error_compensation_improves_output_error(self, rng):
        weight = rng.standard_normal((24, 48)) * 0.1
        base = rng.standard_normal((256, 6))
        mix = rng.standard_normal((6, 48))
        activations = base @ mix + 0.05 * rng.standard_normal((256, 48))
        plain = quantize_shiftadd(weight, None, ShiftAddConfig(bits=2, error_compensation=False))
        compensated = quantize_shiftadd(weight, activations, ShiftAddConfig(bits=2))
        assert (_output_error(weight, compensated, activations)
                <= _output_error(weight, plain, activations) * 1.05)

    def test_rejects_bad_calibration_shape(self, small_weight):
        with pytest.raises(ValueError):
            quantize_shiftadd(small_weight, np.zeros((8, 5)), ShiftAddConfig(bits=2))
