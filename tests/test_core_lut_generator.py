"""Tests for the shared-partial-sum LUT generator."""

import numpy as np
import pytest

from repro.core.lut import build_lut_values
from repro.core.lut_generator import (
    LUTGenerator,
    generate_full_lut,
    generate_half_lut,
    generator_addition_count,
    naive_addition_count,
)


class TestAdditionCounts:
    def test_paper_numbers_for_mu4(self):
        # Section III-E: 14 additions versus the straightforward 24 (42% fewer).
        assert generator_addition_count(4) == 14
        assert naive_addition_count(4, half=True) == 24

    def test_savings_for_mu4_is_about_42_percent(self):
        saving = 1 - generator_addition_count(4) / naive_addition_count(4, half=True)
        assert saving == pytest.approx(0.42, abs=0.01)

    @pytest.mark.parametrize("mu", [2, 3, 4, 6, 8])
    def test_never_worse_than_naive(self, mu):
        assert generator_addition_count(mu) <= naive_addition_count(mu, half=True)

    def test_mu1_needs_no_additions(self):
        assert generator_addition_count(1) == 0
        assert naive_addition_count(1) == 0

    def test_savings_grow_with_mu(self):
        savings = [1 - generator_addition_count(mu) / naive_addition_count(mu, half=True)
                   for mu in (3, 4, 6, 8)]
        assert savings == sorted(savings)

    def test_rejects_invalid_mu(self):
        with pytest.raises(ValueError):
            generator_addition_count(0)


class TestGeneratedValues:
    @pytest.mark.parametrize("mu", [1, 2, 3, 4, 5, 6])
    def test_full_lut_matches_direct_construction(self, rng, mu):
        x = rng.standard_normal(mu)
        values, _ = generate_full_lut(x)
        np.testing.assert_allclose(values, build_lut_values(x))

    @pytest.mark.parametrize("mu", [2, 3, 4, 6])
    def test_half_lut_is_first_half(self, rng, mu):
        x = rng.standard_normal(mu)
        half, _ = generate_half_lut(x)
        np.testing.assert_allclose(half, build_lut_values(x)[: 1 << (mu - 1)])

    def test_stats_report_paper_savings(self, rng):
        _, stats = generate_half_lut(rng.standard_normal(4))
        assert stats.additions == 14
        assert stats.naive_additions == 24
        assert stats.savings == pytest.approx(10 / 24)


class TestLUTGeneratorObject:
    def test_accumulates_addition_counts(self, rng):
        gen = LUTGenerator(mu=4)
        for _ in range(5):
            gen.generate(rng.standard_normal(4))
        assert gen.total_generations == 5
        assert gen.total_additions == 5 * 14

    def test_rejects_wrong_group_size(self, rng):
        gen = LUTGenerator(mu=4)
        with pytest.raises(ValueError):
            gen.generate(rng.standard_normal(3))

    def test_average_savings(self, rng):
        gen = LUTGenerator(mu=4)
        gen.generate(rng.standard_normal(4))
        assert gen.average_savings == pytest.approx(10 / 24)
