"""Metrics registry: reservoir percentiles, counters, gauges, exposition."""

import numpy as np
import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PercentileReservoir,
)


class TestPercentileReservoir:
    def test_empty_reservoir_reports_zero(self):
        r = PercentileReservoir()
        assert r.percentile(50) == 0.0
        assert r.percentile(99) == 0.0
        assert r.count == 0
        assert len(r) == 0

    def test_single_sample_is_every_percentile(self):
        r = PercentileReservoir()
        r.observe(7.25)
        for q in (0, 1, 50, 99, 100):
            assert r.percentile(q) == 7.25
        assert r.count == 1

    def test_constant_series_is_flat(self):
        r = PercentileReservoir(capacity=64)
        for _ in range(1000):
            r.observe(3.0)
        assert r.percentile(50) == 3.0
        assert r.percentile(99) == 3.0
        assert r.count == 1000
        assert len(r) == 64  # ring held at capacity

    def test_exact_match_below_capacity(self):
        # While n <= capacity the reservoir holds every sample, so any
        # percentile equals np.percentile exactly.
        rng = np.random.default_rng(0)
        values = rng.standard_normal(500)
        r = PercentileReservoir(capacity=1024)
        for v in values:
            r.observe(float(v))
        for q in (1, 25, 50, 75, 90, 99):
            assert r.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), abs=0.0)

    def test_sampled_percentiles_track_np_percentile(self):
        # Beyond capacity the reservoir is a uniform sample; the quantile
        # standard error is sqrt(q(1-q)/capacity) in rank terms.  With
        # capacity 1024 and a seeded stream, p50/p90 of N(0,1) land well
        # within 0.15 of the full-population quantile.
        rng = np.random.default_rng(1)
        values = rng.standard_normal(20_000)
        r = PercentileReservoir(capacity=1024, seed=0)
        for v in values:
            r.observe(float(v))
        assert r.count == 20_000
        assert len(r) == 1024
        for q in (50, 90):
            assert abs(r.percentile(q) - float(np.percentile(values, q))) < 0.15

    def test_seeded_reservoirs_are_deterministic(self):
        def fill(seed):
            r = PercentileReservoir(capacity=16, seed=seed)
            for v in range(1000):
                r.observe(float(v))
            return r.values()

        assert fill(seed=3) == fill(seed=3)
        assert fill(seed=3) != fill(seed=4)


class TestCounter:
    def test_inc_and_labels(self):
        c = Counter("requests_total", "served requests")
        c.inc()
        c.inc(2.0)
        c.inc(backend="thread")
        assert c.value() == 3.0
        assert c.value(backend="thread") == 1.0

    def test_negative_increment_rejected(self):
        c = Counter("n_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(4.0)
        g.inc(-1.0)
        assert g.value() == 3.0

    def test_callback_gauge_reads_live_value(self):
        state = {"n": 1}
        g = Gauge("live")
        g.set_function(lambda: state["n"])
        assert g.value() == 1.0
        state["n"] = 9
        assert g.value() == 9.0
        with pytest.raises(TypeError):
            g.set(2.0)  # callback-bound series cannot be set directly


class TestHistogram:
    def test_count_sum_percentile(self):
        h = Histogram("latency_seconds", reservoir_size=128)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 10.0
        assert h.percentile(50) == pytest.approx(2.5)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent_and_type_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("tokens_total", "generated tokens")
        assert reg.counter("tokens_total") is c
        with pytest.raises(TypeError):
            reg.gauge("tokens_total")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(5, shard="0")
        reg.gauge("b").set(2.0)
        reg.histogram("c_seconds").observe(0.25)
        snap = reg.snapshot()
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["samples"][0]["labels"] == {"shard": "0"}
        assert snap["b"]["samples"][0]["value"] == 2.0
        assert snap["c_seconds"]["samples"][0]["count"] == 1

    def test_render_prometheus_parses(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "requests").inc(3, backend="thread")
        reg.gauge("queue_depth", "pending").set(2)
        h = reg.histogram("token_latency_seconds", "per-token latency")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        text = reg.render_prometheus()

        seen = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            seen[name_part] = float(value)
        assert seen['requests_total{backend="thread"}'] == 3.0
        assert seen["queue_depth"] == 2.0
        assert seen["token_latency_seconds_count"] == 3.0
        assert seen["token_latency_seconds_sum"] == pytest.approx(0.007)
        assert 'token_latency_seconds{quantile="0.5"}' in seen
        assert "# TYPE token_latency_seconds summary" in text
        assert "# HELP requests_total requests" in text
