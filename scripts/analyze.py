#!/usr/bin/env python
"""Run the :mod:`repro.analysis` static passes over the repo.

    python scripts/analyze.py [paths...] [--show-suppressed]
                              [--skip-lint] [--skip-verify] [--skip-pool]

Three passes, all execution-free (no GEMM ever runs):

1. **lint** — the repo-specific AST rules (bit-exactness, serve-layer
   concurrency discipline, hygiene) over ``src/`` (or the given paths).
   Unsuppressed findings fail the run; ``# repro: noqa <rule>`` markers
   are listed for auditability.
2. **verify** — ``verify_plan`` / ``verify_program`` /
   ``verify_shard_programs`` over a canonical plan-family sweep: uniform
   and mixed precision, ragged and aligned shapes, several scale-group
   and µ geometries, plus 2- and 3-way segment-shard partitions.
3. **pool** — the :class:`~repro.models.transformer.PagePool` /
   :class:`~repro.models.transformer.PagedKVCache` auditor over an
   allocate/share/release/register/map-prefix lifecycle, checked after
   every mutation.

Exit status 0 when every pass is clean — the blocking CI ``analysis``
job runs exactly this.
"""

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis import (  # noqa: E402
    audit_page_pool,
    lint_paths,
    verify_plan,
    verify_program,
    verify_shard_programs,
)


def run_lint(paths, show_suppressed: bool) -> int:
    findings = lint_paths(paths)
    live = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for f in live:
        print(f"  {f}")
    if show_suppressed:
        for f in suppressed:
            print(f"  {f}")
    print(f"lint: {len(live)} finding(s), {len(suppressed)} suppressed, "
          f"over {', '.join(str(p) for p in paths)}")
    return len(live)


def _plan_family_sweep() -> int:
    """Verify plans/programs/shard partitions across canonical families."""
    from repro.core.mpu import MPUConfig, MatrixProcessingUnit
    from repro.core.program import compile_plan
    from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
    from repro.serve.sharding import shard_plan

    rng = np.random.default_rng(2024)
    checked = 0
    cases = [
        # (m, n, bits, group_size, pe_rows, pe_cols, mu, k, mixed)
        (16, 32, 2, None, 4, 2, 4, 4, False),   # single scale group
        (16, 32, 3, 16, 4, 2, 4, 4, False),     # aligned groups
        (24, 40, 3, 16, 4, 2, 4, 4, True),      # mixed precision
        (33, 47, 2, 8, 4, 2, 4, 4, True),       # ragged rows and columns
        (24, 40, 4, 12, 4, 2, 4, 4, False),     # group not µ-aligned
        (20, 24, 2, 16, 2, 2, 2, 4, True),      # µ=2 geometry
        (16, 30, 3, 7, 8, 1, 2, 8, False),      # prime group size
    ]
    for m, n, bits, group_size, pe_rows, pe_cols, mu, k, mixed in cases:
        config = MPUConfig(pe_rows=pe_rows, pe_cols=pe_cols, mu=mu, k=k)
        mpu = MatrixProcessingUnit(config)
        weight = rng.standard_normal((m, n))
        if mixed:
            per_row = rng.integers(1, bits + 1, size=m)
            bcq = quantize_bcq_mixed(
                weight, per_row, BCQConfig(bits=bits, group_size=group_size))
        else:
            bcq = quantize_bcq(
                weight, BCQConfig(bits=bits, group_size=group_size))
        plan = mpu.plan(bcq)
        verify_plan(plan)
        program = compile_plan(plan, bcq, config)
        verify_program(program, plan=plan, config=config)
        checked += 1

        # Every lowering tier verifies on every family: blocked with a
        # tiny gather budget (many single-segment blocks) and the opt-in
        # relaxed dense contraction alongside the auto pick above.
        tiny = MPUConfig(pe_rows=pe_rows, pe_cols=pe_cols, mu=mu, k=k,
                         gather_budget=1)
        verify_program(compile_plan(plan, bcq, tiny, tier="blocked"),
                       plan=plan, config=tiny)
        verify_program(compile_plan(plan, bcq, config, tier="relaxed",
                                    allow_reassociation=True),
                       plan=plan, config=config)
        checked += 2

        prepared = mpu.prepare(bcq, plan)
        verify_program(compile_plan(plan, prepared, config),
                       plan=plan, config=config)
        checked += 1

        for ways in (2, 3):
            partitions = []
            if plan.num_bands >= ways:
                # The canonical cut: shard_plan partitions whole column
                # bands, keeping every counter exactly additive.
                partitions.append(shard_plan(plan, ways, axis="segments"))
            if len(plan.segments) >= ways:
                # An adversarial interleaved cut: splits column bands, so
                # only the work counters stay additive (the verifier knows).
                partitions.append([plan.shard_segments(
                    range(w, len(plan.segments), ways), w, ways)
                    for w in range(ways)])
            for shards in partitions:
                programs = [compile_plan(plan, bcq, config, shard=s)
                            for s in shards]
                verify_shard_programs(plan, shards, programs, config)
                checked += len(programs)
    return checked


def run_verify() -> int:
    try:
        checked = _plan_family_sweep()
    except AssertionError as err:
        print(f"  {err}")
        print("verify: FAILED")
        return 1
    print(f"verify: {checked} compiled program(s) verified across the "
          "plan-family sweep")
    return 0


def run_pool_audit() -> int:
    from repro.models.transformer import PagePool, PagedKVCache

    pool = PagePool(n_layers=2, n_heads=2, d_head=4, num_pages=16,
                    page_size=4)
    caches: list = []
    failures = 0

    def check(stage: str) -> None:
        nonlocal failures
        violations = audit_page_pool(pool, caches)
        for v in violations:
            print(f"  after {stage}: {v}")
        failures += len(violations)

    check("init")
    cache = PagedKVCache(pool, capacity=32)
    caches.append(cache)
    row_pages = pool.allocate(3)
    cache.add_row(row_pages, prefix_key=0, length=10)
    check("allocate+add_row")
    # Register the first (completed) page and share it with a second row.
    pool.tokens[row_pages[0]] = np.arange(4)
    key = (0, tuple(range(4)))
    pool.register(row_pages[0], key)
    check("register")
    shared = [row_pages[0]] + pool.allocate(1)
    pool.acquire([row_pages[0]])
    cache.add_row(shared, prefix_key=hash(key), length=6)
    check("shared add_row")
    mapped, _, matched = pool.map_prefix(np.arange(4), 4)
    pool.release(mapped)
    check(f"map_prefix ({matched} token(s) matched)")
    cache.remove_rows([0])
    check("remove_rows")
    cache.release()
    caches.clear()
    check("release")
    if pool.num_free != pool.num_pages:
        print(f"  after release: {pool.num_pages - pool.num_free} page(s) "
              "leaked")
        failures += 1
    print("pool: lifecycle audited after every mutation")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Static analysis over the repo (lint + verifiers + "
                    "pool audit)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: src/)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list `# repro: noqa`-suppressed findings")
    parser.add_argument("--skip-lint", action="store_true")
    parser.add_argument("--skip-verify", action="store_true")
    parser.add_argument("--skip-pool", action="store_true")
    args = parser.parse_args(argv)
    paths = args.paths or [str(REPO_ROOT / "src")]

    failures = 0
    if not args.skip_lint:
        failures += run_lint(paths, args.show_suppressed)
    if not args.skip_verify:
        failures += run_verify()
    if not args.skip_pool:
        failures += run_pool_audit()
    status = "clean" if failures == 0 else f"{failures} failure(s)"
    print(f"analysis: {status}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
