#!/usr/bin/env python
"""Run the ``bench``-marked suite and write the perf trajectory as JSON.

Each benchmark that pins a performance floor reports its headline metric
through :func:`benchmarks.conftest.record_bench`; this driver runs them all
and collects the rows into ``BENCH_trajectory.json``::

    [
      {"id": "prefix_cache::ttft_ratio", "metric": "ttft_ratio_x",
       "value": 15.3, "floor": 2.0, "unit": null},
      ...
    ]

so the perf trajectory across PRs is machine-readable (CI uploads the file
as an artifact from a non-blocking job).

    python scripts/bench.py [--output PATH] [pytest args...]

Extra arguments pass through to pytest (e.g. ``-k prefix`` to run one
benchmark, ``-s`` to see the printed tables).  Exits with pytest's status;
the trajectory file is written even when a floor assertion fails, covering
whichever benchmarks completed.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Every floor-pinned benchmark id → (metric, floor); keep in sync with the
# record_bench calls under benchmarks/.  A fresh checkout has no
# BENCH_trajectory.json, and a filtered (``-k``) or floor-failing run
# records only a subset of rows — seeding the missing ids with a null
# value makes every run emit the complete floor set, so trajectory
# consumers see "not measured" instead of a silently absent floor.
KNOWN_FLOORS: dict[str, tuple[str, float]] = {
    "decode_throughput::compiled_step_speedup": ("speedup_x", 2.0),
    "decode_throughput::continuous_batching_speedup": ("speedup_x", 3.0),
    "mpu_speed::batched_vs_scalar": ("speedup_x", 10.0),
    "mpu_speed::compiled_vs_interpreted": ("speedup_x", 1.5),
    "mpu_speed::large_shape_compiled_vs_interpreted": ("speedup_x", 1.0),
    "prefix_cache::ttft_ratio": ("ttft_ratio_x", 2.0),
    "quantize_speed::vectorized_vs_scalar": ("speedup_x", 5.0),
    "serve_throughput::batched_vs_sequential": ("speedup_x", 1.3),
    "telemetry_overhead::disabled_compiled_speedup": ("speedup_x", 1.9),
    # (1 / 1.15) * 0.95 — see benchmarks/test_telemetry_overhead.py.
    "telemetry_overhead::enabled_step_ratio": ("ratio", 0.8260869565217391),
}


def seed_known_floors(rows: list[dict]) -> list[dict]:
    """Append a null-valued row for every known floor the run didn't record."""
    present = {row["id"] for row in rows}
    for bench_id, (metric, floor) in KNOWN_FLOORS.items():
        if bench_id not in present:
            rows.append({"id": bench_id, "metric": metric, "value": None,
                         "floor": floor, "unit": None})
    return rows


def _git_sha() -> str | None:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                             capture_output=True, text=True, timeout=10)
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def stamp_rows(rows: list[dict], *, sha: str | None,
               timestamp: str) -> list[dict]:
    """Attach provenance to trajectory rows, backfill-safe.

    Older trajectory files (and rows written by ``record_bench`` itself,
    which runs inside the timed pytest process and deliberately never
    reads the wall clock) lack the ``git_sha``/``recorded_at`` keys;
    ``setdefault`` fills them without clobbering rows that already carry a
    stamp from a previous run.
    """
    for row in rows:
        row.setdefault("git_sha", sha)
        row.setdefault("recorded_at", timestamp)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run bench-marked tests and write the perf trajectory")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_trajectory.json"),
                        help="trajectory JSON path (default: repo root)")
    args, pytest_args = parser.parse_known_args(argv)

    out = Path(args.output).resolve()
    env = dict(os.environ)
    env["BENCH_TRAJECTORY"] = str(out)
    env["PYTHONPATH"] = "src" + (os.pathsep + env["PYTHONPATH"]
                                 if env.get("PYTHONPATH") else "")
    status = subprocess.call(
        [sys.executable, "-m", "pytest", "-q", "-m", "bench", *pytest_args],
        cwd=REPO_ROOT, env=env)

    # Stamp provenance here, after pytest exits — the stamper reads the
    # wall clock, which is why it lives in this driver and not in the
    # timed benchmark process.  Floors the run did not record (fresh
    # checkout, -k filter, failed benchmark) are seeded with null values,
    # so the file always exists and lists the full floor set.
    stamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")
    rows = json.loads(out.read_text()) if out.exists() else []
    rows = stamp_rows(seed_known_floors(rows), sha=_git_sha(),
                      timestamp=stamp)
    out.write_text(json.dumps(rows, indent=2) + "\n")
    print(f"\nwrote {out} ({len(rows)} metrics):")
    for row in rows:
        floor = row.get("floor")
        suffix = "" if floor is None else f"   (floor {floor:g})"
        value = ("     n/a" if row["value"] is None
                 else f"{row['value']:8.2f}")
        print(f"  {row['id']:48s} {row['metric']:>14s} = {value}{suffix}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
