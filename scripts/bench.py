#!/usr/bin/env python
"""Run the ``bench``-marked suite and write the perf trajectory as JSON.

Each benchmark that pins a performance floor reports its headline metric
through :func:`benchmarks.conftest.record_bench`; this driver runs them all
and collects the rows into ``BENCH_trajectory.json``::

    [
      {"id": "prefix_cache::ttft_ratio", "metric": "ttft_ratio_x",
       "value": 15.3, "floor": 2.0, "unit": null},
      ...
    ]

so the perf trajectory across PRs is machine-readable (CI uploads the file
as an artifact from a non-blocking job).

    python scripts/bench.py [--output PATH] [pytest args...]

Extra arguments pass through to pytest (e.g. ``-k prefix`` to run one
benchmark, ``-s`` to see the printed tables).  Exits with pytest's status;
the trajectory file is written even when a floor assertion fails, covering
whichever benchmarks completed.
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run bench-marked tests and write the perf trajectory")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_trajectory.json"),
                        help="trajectory JSON path (default: repo root)")
    args, pytest_args = parser.parse_known_args(argv)

    out = Path(args.output).resolve()
    env = dict(os.environ)
    env["BENCH_TRAJECTORY"] = str(out)
    env["PYTHONPATH"] = "src" + (os.pathsep + env["PYTHONPATH"]
                                 if env.get("PYTHONPATH") else "")
    status = subprocess.call(
        [sys.executable, "-m", "pytest", "-q", "-m", "bench", *pytest_args],
        cwd=REPO_ROOT, env=env)

    if out.exists():
        rows = json.loads(out.read_text())
        print(f"\nwrote {out} ({len(rows)} metrics):")
        for row in rows:
            floor = "" if row["floor"] is None else f"   (floor {row['floor']:g})"
            print(f"  {row['id']:48s} {row['metric']:>14s} = "
                  f"{row['value']:8.2f}{floor}")
    else:
        print(f"\nno trajectory written ({out}): no benchmark recorded metrics",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
