#!/usr/bin/env python
"""Run the ``bench``-marked suite and write the perf trajectory as JSON.

Each benchmark that pins a performance floor reports its headline metric
through :func:`benchmarks.conftest.record_bench`; this driver runs them all
and collects the rows into ``BENCH_trajectory.json``::

    [
      {"id": "prefix_cache::ttft_ratio", "metric": "ttft_ratio_x",
       "value": 15.3, "floor": 2.0, "unit": null},
      ...
    ]

so the perf trajectory across PRs is machine-readable (CI uploads the file
as an artifact from a non-blocking job).

    python scripts/bench.py [--output PATH] [pytest args...]

Extra arguments pass through to pytest (e.g. ``-k prefix`` to run one
benchmark, ``-s`` to see the printed tables).  Exits with pytest's status;
the trajectory file is written even when a floor assertion fails, covering
whichever benchmarks completed.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str | None:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                             capture_output=True, text=True, timeout=10)
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def stamp_rows(rows: list[dict], *, sha: str | None,
               timestamp: str) -> list[dict]:
    """Attach provenance to trajectory rows, backfill-safe.

    Older trajectory files (and rows written by ``record_bench`` itself,
    which runs inside the timed pytest process and deliberately never
    reads the wall clock) lack the ``git_sha``/``recorded_at`` keys;
    ``setdefault`` fills them without clobbering rows that already carry a
    stamp from a previous run.
    """
    for row in rows:
        row.setdefault("git_sha", sha)
        row.setdefault("recorded_at", timestamp)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run bench-marked tests and write the perf trajectory")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_trajectory.json"),
                        help="trajectory JSON path (default: repo root)")
    args, pytest_args = parser.parse_known_args(argv)

    out = Path(args.output).resolve()
    env = dict(os.environ)
    env["BENCH_TRAJECTORY"] = str(out)
    env["PYTHONPATH"] = "src" + (os.pathsep + env["PYTHONPATH"]
                                 if env.get("PYTHONPATH") else "")
    status = subprocess.call(
        [sys.executable, "-m", "pytest", "-q", "-m", "bench", *pytest_args],
        cwd=REPO_ROOT, env=env)

    if out.exists():
        # Stamp provenance here, after pytest exits — the stamper reads the
        # wall clock, which is why it lives in this driver and not in the
        # timed benchmark process.
        stamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds")
        rows = stamp_rows(json.loads(out.read_text()), sha=_git_sha(),
                          timestamp=stamp)
        out.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"\nwrote {out} ({len(rows)} metrics):")
        for row in rows:
            floor = row.get("floor")
            suffix = "" if floor is None else f"   (floor {floor:g})"
            print(f"  {row['id']:48s} {row['metric']:>14s} = "
                  f"{row['value']:8.2f}{suffix}")
    else:
        print(f"\nno trajectory written ({out}): no benchmark recorded metrics",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
