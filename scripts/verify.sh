#!/usr/bin/env sh
# Repo verification entry point.
#
#   scripts/verify.sh           run the tier-1 suite (unit tests + benchmarks,
#                               the command CI pins), the fast profile, and
#                               the static-analysis passes
#   scripts/verify.sh fast      fast profile only: the unit suite with every
#                               benchmark deselected (-m "not bench")
#   scripts/verify.sh analysis  static-analysis passes only (scripts/analyze.py:
#                               repo lint rules + plan/program verifiers +
#                               page-pool audit; no GEMM executes)
#
# All profiles run from the repo root with src/ on PYTHONPATH, matching
# ROADMAP.md's tier-1 command.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ "${1:-}" = "fast" ]; then
    exec python -m pytest -q -m "not bench"
fi
if [ "${1:-}" = "analysis" ]; then
    exec python scripts/analyze.py
fi

python -m pytest -x -q
python -m pytest -q -m "not bench"
python scripts/analyze.py
