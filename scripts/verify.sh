#!/usr/bin/env sh
# Repo verification entry point.
#
#   scripts/verify.sh         run the tier-1 suite (unit tests + benchmarks,
#                             the command CI pins) and then the fast profile
#   scripts/verify.sh fast    fast profile only: the unit suite with every
#                             benchmark deselected (-m "not bench")
#
# Both profiles run from the repo root with src/ on PYTHONPATH, matching
# ROADMAP.md's tier-1 command.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ "${1:-}" = "fast" ]; then
    exec python -m pytest -q -m "not bench"
fi

python -m pytest -x -q
python -m pytest -q -m "not bench"
